(** Hierarchical metrics registry.

    Wraps the flat {!Mi6_util.Stats} counter tables (whose dotted names
    already encode a hierarchy: [llc.misses], [l1d.0.misses]) together
    with {!Histogram}s and ad-hoc gauges under per-component scopes, and
    snapshots the whole thing as JSON (nested by name segment) or CSV
    (flat [name,value] rows). *)

type t

val create : unit -> t

(** [add_stats t ~scope stats] registers a counter table.  Counter [c]
    appears as [scope.c] ([c] unchanged when [scope] is [""]).  Values are
    read at export time, so registering before a run is fine. *)
val add_stats : t -> scope:string -> Mi6_util.Stats.t -> unit

(** [add_histogram t ~name h] registers a latency/occupancy
    distribution. *)
val add_histogram : t -> name:string -> Histogram.t -> unit

(** [set_int t ~name v] records a standalone gauge (e.g. measured-window
    cycles). *)
val set_int : t -> name:string -> int -> unit

(** [merge ~into src] folds [src]'s exported view into [into]: every
    counter and gauge of [src] (fully qualified) is summed into an
    accumulator table owned by [into], and every histogram is bucket-merged
    into [into]'s histogram of the same name (created on first sight).

    [into] is meant to be a fresh accumulator registry; because inputs are
    read through the sorted export view and addition is commutative, folding
    the same multiset of registries in any order yields identical exports —
    the property the parallel sweep reducer relies on. *)
val merge : into:t -> t -> unit

(** All counters and gauges, fully qualified and sorted by name. *)
val counters : t -> (string * int) list

(** Registered histograms, sorted by name. *)
val histograms : t -> (string * Histogram.t) list

(** Nested-object snapshot: counters and gauges split on ['.'] into a
    tree, histograms (summaries + buckets) under a top-level
    ["histograms"] key. *)
val to_json : t -> Json.t

(** Flat [name,value] CSV (header row included); histograms contribute
    [name.count], [name.mean], [name.p50], [name.p95], [name.p99] and
    [name.max] rows. *)
val to_csv : t -> string

val pp : Format.formatter -> t -> unit
