(** Top-down CPI-stack attribution.

    A stack splits a run's measured cycles into the canonical categories
    produced by the core's per-cycle attributor (every simulated cycle
    lands in exactly one bucket, so a well-formed stack sums exactly to
    the measured cycle count — {!sums_exactly} checks it).  Rendering:
    side-by-side text tables for several variants of one workload,
    folded-stack lines for flamegraph tooling, and JSON for the perf
    history database. *)

(** Canonical category order: [base] (a commit happened), [mispredict]
    (front end refilling after a control redirect), [l1_miss] (ROB head
    or fetch blocked on a short memory access — L1 miss served by the
    LLC), [llc_dram] (blocked long enough that the access went to DRAM),
    [tlb_walk] (blocked behind TLB refills / page walks), [purge] (MI6
    microarchitectural purge in progress), [other] (everything else:
    execution latency, structural hazards, drained stream). *)
val categories : string list

(** Fully qualified counter name for a category, [prefix ^ "." ^ cat];
    the core uses prefix ["core.cpi"]. *)
val counter_name : ?prefix:string -> string -> string

type t

(** [v ~label ~total entries] — a stack from explicit per-category cycle
    counts.  Unknown categories are rejected with [Invalid_argument];
    missing ones default to 0. *)
val v : label:string -> total:int -> (string * int) list -> t

(** [of_counters ~label ~total counters] reads the per-category cycles
    from a flat counter listing (e.g. {!Mi6_util.Stats.to_assoc} of a
    measured window) under [prefix] (default ["core.cpi"]). *)
val of_counters :
  label:string -> total:int -> ?prefix:string -> (string * int) list -> t

val label : t -> string

(** Total measured cycles the stack is attributed against. *)
val total : t -> int

(** [cycles t cat] — cycles attributed to [cat] (0 for unknown names). *)
val cycles : t -> string -> int

(** [attributed t] — sum of all category cycles. *)
val attributed : t -> int

(** [residual t] = [total t - attributed t]; 0 for a well-formed stack. *)
val residual : t -> int

val sums_exactly : t -> bool

(** [share t cat] — fraction of the total in [0, 1]; 0 on an empty run. *)
val share : t -> string -> float

(** One folded-stack line per category, ["stem;cat cycles"], suitable
    for [flamegraph.pl] input.  [stem] defaults to the stack label. *)
val to_folded : ?stem:string -> t -> string

(** Side-by-side text table: one row per category (plus residual when
    nonzero and the total), one column per stack. *)
val table : t list -> string

val to_json : t -> Json.t
