module Stats = Mi6_util.Stats

type t = {
  mutable stats : (string * Stats.t) list; (* scope, table; newest first *)
  mutable hists : (string * Histogram.t) list;
  mutable ints : (string * int) list;
  mutable acc : Stats.t option; (* merge accumulator, created on demand *)
}

let create () = { stats = []; hists = []; ints = []; acc = None }
let add_stats t ~scope stats = t.stats <- (scope, stats) :: t.stats
let add_histogram t ~name h = t.hists <- (name, h) :: t.hists

let set_int t ~name v =
  t.ints <- (name, v) :: List.remove_assoc name t.ints

let qualify scope name = if scope = "" then name else scope ^ "." ^ name

let counters t =
  let of_stats =
    List.concat_map
      (fun (scope, s) ->
        List.map (fun (n, v) -> (qualify scope n, v)) (Stats.to_assoc s))
      t.stats
  in
  List.sort compare (of_stats @ t.ints)

let histograms t = List.sort compare t.hists

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let merge ~into src =
  let acc =
    match into.acc with
    | Some s -> s
    | None ->
      let s = Stats.create () in
      into.acc <- Some s;
      add_stats into ~scope:"" s;
      s
  in
  List.iter (fun (name, v) -> Stats.add acc name v) (counters src);
  List.iter
    (fun (name, h) ->
      match List.assoc_opt name into.hists with
      | Some dst -> Histogram.merge ~into:dst h
      | None ->
        let dst = Histogram.create () in
        Histogram.merge ~into:dst h;
        add_histogram into ~name dst)
    (histograms src)

(* ------------------------------------------------------------------ *)
(* Nested JSON                                                         *)
(* ------------------------------------------------------------------ *)

(* A trie over name segments; a node holds at most one leaf value (under
   the reserved key "_" if it also has children). *)
type node = { mutable leaf : Json.t option; mutable kids : (string * node) list }

let fresh () = { leaf = None; kids = [] }

let rec insert node segs v =
  match segs with
  | [] -> node.leaf <- Some v
  | s :: rest ->
    let child =
      match List.assoc_opt s node.kids with
      | Some c -> c
      | None ->
        let c = fresh () in
        node.kids <- node.kids @ [ (s, c) ];
        c
    in
    insert child rest v

let rec node_to_json node =
  match (node.leaf, node.kids) with
  | Some v, [] -> v
  | leaf, kids ->
    let fields =
      (match leaf with Some v -> [ ("_", v) ] | None -> [])
      @ List.map (fun (k, c) -> (k, node_to_json c)) kids
    in
    Json.Obj (List.sort compare fields)

let to_json t =
  let root = fresh () in
  List.iter
    (fun (name, v) -> insert root (String.split_on_char '.' name) (Json.Int v))
    (counters t);
  let base = node_to_json root in
  let hists =
    Json.Obj
      (List.map (fun (n, h) -> (n, Histogram.to_json h)) (histograms t))
  in
  match base with
  | Json.Obj fields -> Json.Obj (fields @ [ ("histograms", hists) ])
  | other -> Json.Obj [ ("counters", other); ("histograms", hists) ]

(* ------------------------------------------------------------------ *)
(* Flat exports                                                        *)
(* ------------------------------------------------------------------ *)

let flat_rows t =
  counters t
  @ List.concat_map
      (fun (n, h) ->
        [
          (n ^ ".count", Histogram.count h);
          (n ^ ".mean", int_of_float (Float.round (Histogram.mean h)));
          (n ^ ".p50", Histogram.p50 h);
          (n ^ ".p95", Histogram.p95 h);
          (n ^ ".p99", Histogram.p99 h);
          (n ^ ".max", Histogram.max h);
        ])
      (histograms t)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,value\n";
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%s,%d\n" n v))
    (flat_rows t);
  Buffer.contents buf

let pp ppf t =
  let rows = counters t in
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 24 rows
  in
  List.iter (fun (n, v) -> Format.fprintf ppf "%-*s %d@." width n v) rows;
  List.iter
    (fun (n, h) -> Format.fprintf ppf "%-*s %a@." width n Histogram.pp h)
    (histograms t)
