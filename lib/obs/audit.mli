(** Leakage auditor: align two cycle-stamped event streams and localize
    where — and through which hardware channel — they first diverge.

    The MI6 non-interference claim (paper Section 5.4) is that a
    victim's cycle-stamped view of the shared memory system is
    bit-identical whatever a co-resident attacker does.  {!diff} takes
    the victim's event stream under two attacker behaviours and produces
    a {!report}: the overall first-divergence point plus a per-channel
    verdict (LLC arbiter, MSHR file, UQ/DQ queues, DRAM command bus,
    cache fills, page walks), so a failing configuration names the
    leaking structure rather than just "traces differ". *)

(** The hardware structures an event stream is split into.  [Sample]
    collects the periodic occupancy counters, which are diagnostics
    rather than attacker-visible timing. *)
type channel = Arbiter | Mshr | Uq_dq | Dram | Cache | Walk | Purge | Sample

val all_channels : channel list
val channel_name : channel -> string
val channel_of_event : Trace.event -> channel

(** A first point of disagreement between two aligned streams.
    [d_index] is the position in the compared (sub)stream; the cycle and
    label are [None]/["<end-of-stream>"] on the side that ran out of
    events first. *)
type divergence = {
  d_index : int;
  d_cycle_a : int option;
  d_cycle_b : int option;
  d_label_a : string;
  d_label_b : string;
}

(** The label standing in for the side that ran out of events. *)
val eos : string

type channel_verdict = {
  v_channel : channel;
  v_events_a : int;
  v_events_b : int;
  v_first : divergence option;
}

type report = {
  r_label_a : string;
  r_label_b : string;
  r_events_a : int;
  r_events_b : int;
  r_first : divergence option;  (** across the full interleaved stream *)
  r_channels : channel_verdict list;
}

(** [diff a b] — compare two event streams (oldest first, as returned by
    {!Trace.events}).  Two events agree when both their cycle stamps and
    their {!Trace.event_label} renderings are equal. *)
val diff :
  ?label_a:string ->
  ?label_b:string ->
  (int * Trace.event) list ->
  (int * Trace.event) list ->
  report

(** A report is clean when the full streams are bit-identical. *)
val clean : report -> bool

(** Channels that diverged, earliest first (by the cycle stamp of their
    first divergence). *)
val leaking_channels : report -> channel list

(** The earliest-diverging channel, i.e. where the leak enters. *)
val first_leaking_channel : report -> channel option

(** The earliest victim-visible cycle at which the streams disagree
    (also exported as [first_divergence_cycle] in the report JSON) —
    the coordinate [mi6_sim bisect] refines down to a component and a
    field-level state diff. *)
val first_divergence_cycle : report -> int option

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Json.t
