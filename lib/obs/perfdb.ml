type host = {
  wall_s : float;
  kips : float;
  phases : (string * float) list;
}

type record = {
  run_id : string;
  commit : string;
  variant : string;
  bench : string;
  cycles : int;
  instrs : int;
  ipc : float;
  cpi : (string * int) list;
  quantiles : (string * (int * int * int)) list;
  host : host option;
}

let host_to_json h =
  Json.Obj
    [
      ("wall_s", Json.Float h.wall_s);
      ("kips", Json.Float h.kips);
      ( "phases",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) h.phases) );
    ]

let record_to_json r =
  Json.Obj
    ([
       ("run_id", Json.String r.run_id);
       ("commit", Json.String r.commit);
       ("variant", Json.String r.variant);
       ("bench", Json.String r.bench);
       ("cycles", Json.Int r.cycles);
       ("instrs", Json.Int r.instrs);
       ("ipc", Json.Float r.ipc);
       ("cpi", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.cpi));
       ( "quantiles",
         Json.Obj
           (List.map
              (fun (k, (p50, p95, p99)) ->
                ( k,
                  Json.Obj
                    [
                      ("p50", Json.Int p50);
                      ("p95", Json.Int p95);
                      ("p99", Json.Int p99);
                    ] ))
              r.quantiles) );
     ]
    @ match r.host with None -> [] | Some h -> [ ("host", host_to_json h) ])

let record_of_json j =
  let ( let* ) = Result.bind in
  let field name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let str name =
    let* v = field name (Json.member name j) in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "field %S: expected string" name)
  in
  let int name =
    let* v = field name (Json.member name j) in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "field %S: expected int" name)
  in
  let num name =
    let* v = field name (Json.member name j) in
    match v with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "field %S: expected number" name)
  in
  let* run_id = str "run_id" in
  let* commit = str "commit" in
  let* variant = str "variant" in
  let* bench = str "bench" in
  let* cycles = int "cycles" in
  let* instrs = int "instrs" in
  let* ipc = num "ipc" in
  let* cpi =
    let* v = field "cpi" (Json.member "cpi" j) in
    match v with
    | Json.Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match v with
          | Json.Int i -> Ok ((k, i) :: acc)
          | _ -> Error (Printf.sprintf "cpi.%s: expected int" k))
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "field \"cpi\": expected object"
  in
  let* quantiles =
    let* v = field "quantiles" (Json.member "quantiles" j) in
    match v with
    | Json.Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let q name =
            match Json.member name v with
            | Some (Json.Int i) -> Ok i
            | _ -> Error (Printf.sprintf "quantiles.%s.%s: expected int" k name)
          in
          let* p50 = q "p50" in
          let* p95 = q "p95" in
          let* p99 = q "p99" in
          Ok ((k, (p50, p95, p99)) :: acc))
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "field \"quantiles\": expected object"
  in
  (* [host] is optional: records written before host-cost tracking (or
     with profiling off) simply lack it. *)
  let* host =
    match Json.member "host" j with
    | None -> Ok None
    | Some h ->
      let hnum name =
        match Json.member name h with
        | Some (Json.Float f) -> Ok f
        | Some (Json.Int i) -> Ok (float_of_int i)
        | _ -> Error (Printf.sprintf "host.%s: expected number" name)
      in
      let* wall_s = hnum "wall_s" in
      let* kips = hnum "kips" in
      let* phases =
        match Json.member "phases" h with
        | None -> Ok []
        | Some (Json.Obj fields) ->
          List.fold_left
            (fun acc (k, v) ->
              let* acc = acc in
              match v with
              | Json.Float f -> Ok ((k, f) :: acc)
              | Json.Int i -> Ok ((k, float_of_int i) :: acc)
              | _ -> Error (Printf.sprintf "host.phases.%s: expected number" k))
            (Ok []) fields
          |> Result.map List.rev
        | Some _ -> Error "host.phases: expected object"
      in
      Ok (Some { wall_s; kips; phases })
  in
  Ok { run_id; commit; variant; bench; cycles; instrs; ipc; cpi; quantiles;
       host }

let append ~path records =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  List.iter
    (fun r ->
      output_string oc (Json.to_string (record_to_json r));
      output_char oc '\n')
    records;
  close_out oc

let load ~path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go lineno acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | "" -> go (lineno + 1) acc
      | line -> (
        match record_of_json (Json.of_string line) with
        | Ok r -> go (lineno + 1) (r :: acc)
        | Error msg ->
          close_in ic;
          failwith (Printf.sprintf "%s:%d: %s" path lineno msg)
        | exception Failure msg ->
          close_in ic;
          failwith (Printf.sprintf "%s:%d: %s" path lineno msg))
    in
    let records = go 1 [] in
    close_in ic;
    records
  end

let run_ids records =
  List.fold_left
    (fun acc r -> if List.mem r.run_id acc then acc else r.run_id :: acc)
    [] records
  |> List.rev

let run records ~run_id = List.filter (fun r -> r.run_id = run_id) records

let latest_two records =
  match List.rev (run_ids records) with
  | latest :: previous :: _ ->
    Some (run records ~run_id:previous, run records ~run_id:latest)
  | _ -> None

let next_run_id records ~commit =
  Printf.sprintf "%04d-%s" (List.length (run_ids records) + 1) commit

type regression = {
  r_variant : string;
  r_bench : string;
  r_metric : string;
  r_old : float;
  r_new : float;
  r_delta_pct : float;
}

let compare_runs ?(max_cycle_regress_pct = 5.0) ?(max_ipc_drop_pct = 5.0)
    ?(max_kips_drop_pct = 50.0) ~old_run ~new_run () =
  List.concat_map
    (fun (n : record) ->
      match
        List.find_opt
          (fun (o : record) -> o.variant = n.variant && o.bench = n.bench)
          old_run
      with
      | None -> []
      | Some o ->
        let pct ~old_ ~new_ =
          if old_ = 0.0 then 0.0 else 100.0 *. (new_ -. old_) /. old_
        in
        let cyc =
          pct ~old_:(float_of_int o.cycles) ~new_:(float_of_int n.cycles)
        in
        let ipc = pct ~old_:o.ipc ~new_:n.ipc in
        (if cyc > max_cycle_regress_pct then
           [
             {
               r_variant = n.variant;
               r_bench = n.bench;
               r_metric = "cycles";
               r_old = float_of_int o.cycles;
               r_new = float_of_int n.cycles;
               r_delta_pct = cyc;
             };
           ]
         else [])
        @ (if -.ipc > max_ipc_drop_pct then
             [
               {
                 r_variant = n.variant;
                 r_bench = n.bench;
                 r_metric = "ipc";
                 r_old = o.ipc;
                 r_new = n.ipc;
                 r_delta_pct = -.ipc;
               };
             ]
           else [])
        @
        (* Host-speed gate: generous threshold, since wall time on a
           shared CI host is noisy — this catches order-of-magnitude
           simulator slowdowns, not percent-level jitter. *)
        match (o.host, n.host) with
        | Some oh, Some nh when -.(pct ~old_:oh.kips ~new_:nh.kips)
                                > max_kips_drop_pct ->
          [
            {
              r_variant = n.variant;
              r_bench = n.bench;
              r_metric = "kips";
              r_old = oh.kips;
              r_new = nh.kips;
              r_delta_pct = -.(pct ~old_:oh.kips ~new_:nh.kips);
            };
          ]
        | _ -> [])
    new_run

let pp_regression ppf r =
  Format.fprintf ppf "%s/%s %s: %.1f -> %.1f (%+.1f%% %s)" r.r_variant r.r_bench
    r.r_metric r.r_old r.r_new r.r_delta_pct
    (if r.r_metric = "cycles" then "slower" else "drop")

let git_commit ?(root = ".") () =
  let read_file path =
    match open_in path with
    | exception Sys_error _ -> None
    | ic ->
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      line
  in
  let trim = String.trim in
  match read_file (Filename.concat root ".git/HEAD") with
  | None -> "unknown"
  | Some head ->
    let head = trim head in
    if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
      let refname = trim (String.sub head 5 (String.length head - 5)) in
      match read_file (Filename.concat root (Filename.concat ".git" refname)) with
      | Some sha -> trim sha
      | None -> "unknown"
    end
    else if head <> "" then head
    else "unknown"
