let categories =
  [ "base"; "mispredict"; "l1_miss"; "llc_dram"; "tlb_walk"; "purge"; "other" ]

let counter_name ?(prefix = "core.cpi") cat = prefix ^ "." ^ cat

type t = { label : string; total : int; entries : (string * int) list }

let v ~label ~total entries =
  List.iter
    (fun (cat, _) ->
      if not (List.mem cat categories) then
        invalid_arg (Printf.sprintf "Cpistack.v: unknown category %S" cat))
    entries;
  let entries =
    List.map
      (fun cat ->
        (cat, match List.assoc_opt cat entries with Some c -> c | None -> 0))
      categories
  in
  { label; total; entries }

let of_counters ~label ~total ?prefix counters =
  v ~label ~total
    (List.filter_map
       (fun cat ->
         Option.map
           (fun c -> (cat, c))
           (List.assoc_opt (counter_name ?prefix cat) counters))
       categories)

let label t = t.label
let total t = t.total
let cycles t cat = match List.assoc_opt cat t.entries with Some c -> c | None -> 0
let attributed t = List.fold_left (fun acc (_, c) -> acc + c) 0 t.entries
let residual t = t.total - attributed t
let sums_exactly t = residual t = 0

let share t cat =
  if t.total = 0 then 0.0 else float_of_int (cycles t cat) /. float_of_int t.total

let to_folded ?stem t =
  let stem = match stem with Some s -> s | None -> t.label in
  let buf = Buffer.create 256 in
  List.iter
    (fun (cat, c) ->
      if c > 0 then Buffer.add_string buf (Printf.sprintf "%s;%s %d\n" stem cat c))
    t.entries;
  let r = residual t in
  if r > 0 then Buffer.add_string buf (Printf.sprintf "%s;unattributed %d\n" stem r);
  Buffer.contents buf

let table stacks =
  let buf = Buffer.create 1024 in
  let name_w =
    List.fold_left
      (fun w cat -> max w (String.length cat))
      (String.length "unattributed") categories
  in
  let col_w =
    List.fold_left (fun w s -> max w (String.length s.label + 9)) 18 stacks
  in
  Buffer.add_string buf (Printf.sprintf "%-*s" name_w "");
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  %*s" col_w s.label))
    stacks;
  Buffer.add_char buf '\n';
  let row name value =
    Buffer.add_string buf (Printf.sprintf "%-*s" name_w name);
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf "  %*s" col_w (value s)))
      stacks;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun cat ->
      row cat (fun s ->
          Printf.sprintf "%d (%4.1f%%)" (cycles s cat) (100.0 *. share s cat)))
    categories;
  if List.exists (fun s -> residual s <> 0) stacks then
    row "unattributed" (fun s -> string_of_int (residual s));
  row "TOTAL" (fun s -> string_of_int s.total);
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("label", Json.String t.label);
      ("total_cycles", Json.Int t.total);
      ("residual", Json.Int (residual t));
      ("stack", Json.Obj (List.map (fun (cat, c) -> (cat, Json.Int c)) t.entries));
    ]
