(* 63 buckets cover every non-negative OCaml int: bucket 0 is {0},
   bucket i>=1 is [2^(i-1), 2^i). *)
let nbuckets = 63

type t = {
  counts : int array;
  mutable n : int;
  mutable total : int;
  mutable lo : int; (* smallest sample; max_int when empty *)
  mutable hi : int; (* largest sample *)
}

let create () =
  { counts = Array.make nbuckets 0; n = 0; total = 0; lo = max_int; hi = 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v) *)
    let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
    go 0 v
  end

let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i = 0 then 0 else (1 lsl i) - 1

let add t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v < t.lo then t.lo <- v;
  if v > t.hi then t.hi <- v

let count t = t.n
let sum t = t.total
let min t = if t.n = 0 then 0 else t.lo
let max t = t.hi
let mean t = if t.n = 0 then 0.0 else float_of_int t.total /. float_of_int t.n

let quantile t q =
  if t.n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let rec go i seen =
      if i >= nbuckets then t.hi
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= rank then Stdlib.min (bucket_hi i) t.hi else go (i + 1) seen
      end
    in
    go 0 0
  end

let p50 t = quantile t 0.50
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99

let buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_lo i, bucket_hi i, t.counts.(i)) :: !acc
  done;
  !acc

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.n <- 0;
  t.total <- 0;
  t.lo <- max_int;
  t.hi <- 0

let copy t =
  {
    counts = Array.copy t.counts;
    n = t.n;
    total = t.total;
    lo = t.lo;
    hi = t.hi;
  }

let restore ~into src =
  Array.blit src.counts 0 into.counts 0 nbuckets;
  into.n <- src.n;
  into.total <- src.total;
  into.lo <- src.lo;
  into.hi <- src.hi

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.total <- into.total + src.total;
  if src.n > 0 then begin
    if src.lo < into.lo then into.lo <- src.lo;
    if src.hi > into.hi then into.hi <- src.hi
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d" t.n (mean t)
    (p50 t) (p95 t) (p99 t) t.hi

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Int t.total);
      ("mean", Json.Float (mean t));
      ("min", Json.Int (min t));
      ("max", Json.Int t.hi);
      ("p50", Json.Int (p50 t));
      ("p95", Json.Int (p95 t));
      ("p99", Json.Int (p99 t));
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int c) ])
             (buckets t)) );
    ]
