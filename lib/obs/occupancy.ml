(* Structure-occupancy sampling and the quiet-cycle detector.

   Occupancy: one sample per structure per cycle into the log2
   histograms, answering "how full do the ROB / issue queues / LQ / SQ /
   store buffer / LLC MSHRs actually run?" — the sizing input for the
   flat-state refactor.

   Quiet cycles: the machine hands the detector its structural signature
   (see [Mi6_util.Statesig]) once per cycle; a cycle whose signature
   equals the previous cycle's advanced nothing but the clock, so an
   event-driven simulator could have skipped it.  Each cycle is also
   tagged with the core's CPI-stack attribution, giving the
   fast-forwardable fraction per stall cause (a purge stall is quiet
   almost always; a commit cycle never is). *)

let causes = Array.of_list Cpistack.categories
let n_causes = Array.length causes

type t = {
  enabled : bool;
  rob : Histogram.t;
  iq : Histogram.t;
  lq : Histogram.t;
  sq : Histogram.t;
  sb : Histogram.t;
  mshr : Histogram.t;
  mutable cycles : int;
  mutable quiet : int;
  mutable last_sig : int;
  mutable have_sig : bool;
  cause_cycles : int array;
  cause_quiet : int array;
}

let null =
  {
    enabled = false;
    rob = Histogram.create ();
    iq = Histogram.create ();
    lq = Histogram.create ();
    sq = Histogram.create ();
    sb = Histogram.create ();
    mshr = Histogram.create ();
    cycles = 0;
    quiet = 0;
    last_sig = 0;
    have_sig = false;
    cause_cycles = [||];
    cause_quiet = [||];
  }

let create () =
  {
    enabled = true;
    rob = Histogram.create ();
    iq = Histogram.create ();
    lq = Histogram.create ();
    sq = Histogram.create ();
    sb = Histogram.create ();
    mshr = Histogram.create ();
    cycles = 0;
    quiet = 0;
    last_sig = 0;
    have_sig = false;
    cause_cycles = Array.make n_causes 0;
    cause_quiet = Array.make n_causes 0;
  }

let enabled t = t.enabled

let sample t ~rob ~iq ~lq ~sq ~sb ~mshr =
  if t.enabled then begin
    Histogram.add t.rob rob;
    Histogram.add t.iq iq;
    Histogram.add t.lq lq;
    Histogram.add t.sq sq;
    Histogram.add t.sb sb;
    Histogram.add t.mshr mshr
  end

let note_cycle t ~signature ~cause =
  if t.enabled then begin
    let cause = if cause >= 0 && cause < n_causes then cause else n_causes - 1 in
    t.cycles <- t.cycles + 1;
    t.cause_cycles.(cause) <- t.cause_cycles.(cause) + 1;
    if t.have_sig && signature = t.last_sig then begin
      t.quiet <- t.quiet + 1;
      t.cause_quiet.(cause) <- t.cause_quiet.(cause) + 1
    end;
    t.last_sig <- signature;
    t.have_sig <- true
  end

let cycles t = t.cycles
let quiet_cycles t = t.quiet

let quiet_fraction t =
  if t.cycles = 0 then 0.0 else float_of_int t.quiet /. float_of_int t.cycles

(* (cause, quiet cycles, total cycles) for causes seen at least once. *)
let by_cause t =
  if not t.enabled then []
  else
    List.filter_map
      (fun i ->
        if t.cause_cycles.(i) = 0 then None
        else Some (causes.(i), t.cause_quiet.(i), t.cause_cycles.(i)))
      (List.init n_causes Fun.id)

(* Histograms and quiet-cycle gauges into a metrics registry; merging
   per-cell registries then merges occupancy distributions too. *)
let register t reg =
  if t.enabled then begin
    Metrics.add_histogram reg ~name:"occupancy.rob" t.rob;
    Metrics.add_histogram reg ~name:"occupancy.iq" t.iq;
    Metrics.add_histogram reg ~name:"occupancy.lq" t.lq;
    Metrics.add_histogram reg ~name:"occupancy.sq" t.sq;
    Metrics.add_histogram reg ~name:"occupancy.sb" t.sb;
    Metrics.add_histogram reg ~name:"occupancy.llc_mshr" t.mshr;
    Metrics.set_int reg ~name:"quiet.cycles" t.cycles;
    Metrics.set_int reg ~name:"quiet.quiet_cycles" t.quiet;
    List.iter
      (fun (cause, q, tot) ->
        Metrics.set_int reg ~name:("quiet.by_cause." ^ cause ^ ".quiet") q;
        Metrics.set_int reg ~name:("quiet.by_cause." ^ cause ^ ".cycles") tot)
      (by_cause t)
  end

let to_json t =
  let hist name h =
    ( name,
      Json.Obj
        [
          ("count", Json.Int (Histogram.count h));
          ("mean", Json.Float (Histogram.mean h));
          ("p50", Json.Int (Histogram.p50 h));
          ("p95", Json.Int (Histogram.p95 h));
          ("max", Json.Int (Histogram.max h));
        ] )
  in
  Json.Obj
    [
      ("cycles", Json.Int t.cycles);
      ("quiet_cycles", Json.Int t.quiet);
      ("quiet_fraction", Json.Float (quiet_fraction t));
      ( "by_cause",
        Json.Obj
          (List.map
             (fun (cause, q, tot) ->
               ( cause,
                 Json.Obj
                   [ ("quiet", Json.Int q); ("cycles", Json.Int tot) ] ))
             (by_cause t)) );
      ( "structures",
        Json.Obj
          [
            hist "rob" t.rob;
            hist "iq" t.iq;
            hist "lq" t.lq;
            hist "sq" t.sq;
            hist "sb" t.sb;
            hist "llc_mshr" t.mshr;
          ] );
    ]
