(** Log2-bucketed distributions of non-negative integer samples (latencies,
    occupancies, retry counts).

    Bucket 0 holds the value 0; bucket [i >= 1] holds values in
    [[2^(i-1), 2^i)].  Adding a sample is a handful of integer ops, cheap
    enough to leave enabled on the simulator's hot paths. *)

type t

val create : unit -> t

(** [add t v] records one sample.  Negative values clamp to 0. *)
val add : t -> int -> unit

val count : t -> int
val sum : t -> int

(** [min t] / [max t] are the extreme recorded samples; 0 when empty. *)
val min : t -> int

val max : t -> int

(** [mean t] is 0.0 when empty. *)
val mean : t -> float

(** Number of log2 buckets (bucket 0 holds exactly [{0}]; bucket [i]
    holds [[2^(i-1), 2^i)]). *)
val nbuckets : int

(** [bucket_of v] is the bucket index a sample lands in. *)
val bucket_of : int -> int

(** [bucket_lo i] / [bucket_hi i] are the inclusive bounds of bucket [i]. *)
val bucket_lo : int -> int

val bucket_hi : int -> int

(** [quantile t q] (with [0 < q <= 1]) is an upper bound for the
    [q]-quantile sample: the smaller of the holding bucket's inclusive
    upper bound and the recorded maximum.  0 when the histogram is
    empty. *)
val quantile : t -> float -> int

val p50 : t -> int
val p95 : t -> int
val p99 : t -> int

(** [buckets t] lists the non-empty buckets as [(lo, hi, count)],
    ascending. *)
val buckets : t -> (int * int * int) list

val reset : t -> unit

(** [copy t] is an independent snapshot. *)
val copy : t -> t

(** [restore ~into snapshot] overwrites [into] in place with the buckets
    and totals of [snapshot], preserving the histogram's identity (the
    checkpoint/restore primitive for components that registered the
    histogram elsewhere). *)
val restore : into:t -> t -> unit

(** [merge ~into src] adds [src]'s buckets and totals into [into]. *)
val merge : into:t -> t -> unit

(** One-line summary: [n=… mean=… p50=… p95=… p99=… max=…]. *)
val pp : Format.formatter -> t -> unit

(** Summary as a JSON object (count/sum/mean/min/max/p50/p95/p99 and the
    non-empty buckets). *)
val to_json : t -> Json.t
