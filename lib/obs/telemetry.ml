(* Streaming JSONL telemetry: one schema-versioned snapshot object per
   line, every N machine cycles, written while the run is in progress —
   so long runs and fleet sweeps can be watched (mi6_sim top) and
   post-processed incrementally instead of only at end-of-run.

   Counters are emitted as deltas since the previous snapshot (nonzero
   only), occupancy/quiet state as cumulative summaries.  The [host]
   section carries wall-clock and kips and is omitted in deterministic
   mode, which the sweep uses so that per-cell streams are byte-identical
   for every --jobs value.

   Schema versioning policy: the [schema] field is "mi6.telemetry/N".
   Adding fields is backward-compatible and does NOT bump N; removing or
   re-typing a field bumps N.  Consumers must ignore unknown fields and
   reject unknown majors. *)

let schema_version = "mi6.telemetry/1"

type t = {
  enabled : bool;
  every : int;
  deterministic : bool;
  oc : out_channel option;
  mutable seq : int;
  mutable last_cycle : int;
  mutable last_instrs : int;
  mutable last_counters : (string * int) list; (* sorted by name *)
  mutable start_wall : float;
  mutable last_wall : float;
}

let null =
  {
    enabled = false;
    every = max_int;
    deterministic = true;
    oc = None;
    seq = 0;
    last_cycle = 0;
    last_instrs = 0;
    last_counters = [];
    start_wall = 0.0;
    last_wall = 0.0;
  }

let create ?(deterministic = false) ~every ~path () =
  if every <= 0 then invalid_arg "Telemetry.create: every must be positive";
  let oc = open_out path in
  let now = if deterministic then 0.0 else Unix.gettimeofday () in
  {
    enabled = true;
    every;
    deterministic;
    oc = Some oc;
    seq = 0;
    last_cycle = 0;
    last_instrs = 0;
    last_counters = [];
    start_wall = now;
    last_wall = now;
  }

let enabled t = t.enabled
let every t = t.every
let snapshots t = t.seq

(* Sorted-assoc delta: counters only ever grow, so a two-pointer walk
   over the sorted views covers additions and increments. *)
let counter_deltas ~prev ~cur =
  let rec go prev cur acc =
    match (prev, cur) with
    | _, [] -> List.rev acc
    | [], (k, v) :: cur -> go [] cur (if v <> 0 then (k, v) :: acc else acc)
    | (pk, pv) :: prest, (k, v) :: crest ->
      if pk = k then
        go prest crest (if v <> pv then (k, v - pv) :: acc else acc)
      else if pk < k then go prest cur acc (* counter vanished: skip *)
      else go prev crest (if v <> 0 then (k, v) :: acc else acc)
  in
  go prev cur []

let emit t ~cycle ~instrs ~counters ~occupancy ~selfprof =
  match t.oc with
  | None -> ()
  | Some oc ->
    let deltas = counter_deltas ~prev:t.last_counters ~cur:counters in
    let host =
      if t.deterministic then []
      else begin
        let now = Unix.gettimeofday () in
        let dwall = now -. t.last_wall in
        let dcycles = cycle - t.last_cycle in
        let kips =
          if dwall <= 0.0 then 0.0
          else float_of_int dcycles /. dwall /. 1000.0
        in
        t.last_wall <- now;
        [
          ( "host",
            Json.Obj
              ([
                 ("wall_s", Json.Float (now -. t.start_wall));
                 ("dwall_s", Json.Float dwall);
                 ("kips", Json.Float kips);
               ]
              @
              if Selfprof.enabled selfprof then
                [ ("selfprof", Selfprof.to_json selfprof) ]
              else []) );
        ]
      end
    in
    let snap =
      Json.Obj
        ([
           ("schema", Json.String schema_version);
           ("seq", Json.Int t.seq);
           ("cycle", Json.Int cycle);
           ("dcycles", Json.Int (cycle - t.last_cycle));
           ("instrs", Json.Int instrs);
           ("dinstrs", Json.Int (instrs - t.last_instrs));
           ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) deltas));
           ("occupancy", Occupancy.to_json occupancy);
         ]
        @ host)
    in
    output_string oc (Json.to_string snap);
    output_char oc '\n';
    flush oc;
    t.seq <- t.seq + 1;
    t.last_cycle <- cycle;
    t.last_instrs <- instrs;
    t.last_counters <- counters

let maybe_emit t ~cycle ~instrs ~counters ~occupancy ~selfprof =
  if t.enabled && cycle > 0 && cycle mod t.every = 0 then
    emit t ~cycle ~instrs ~counters:(counters ()) ~occupancy ~selfprof

let close t = match t.oc with None -> () | Some oc -> close_out oc

(* ------------------------------------------------------------------ *)
(* Stream validation (json_check --telemetry, tests)                   *)
(* ------------------------------------------------------------------ *)

let validate_snapshot ?expect_seq j =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema_version -> Ok ()
    | Some (Json.String s) ->
      Error (Printf.sprintf "schema %S, expected %S" s schema_version)
    | _ -> Error "missing schema field"
  in
  let int name =
    match Json.member name j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "field %S: expected int" name)
  in
  let* seq = int "seq" in
  let* () =
    match expect_seq with
    | Some e when e <> seq ->
      Error (Printf.sprintf "seq %d, expected %d" seq e)
    | _ -> Ok ()
  in
  let* _ = int "cycle" in
  let* _ = int "instrs" in
  let* () =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* () = acc in
          match v with
          | Json.Int _ -> Ok ()
          | _ -> Error (Printf.sprintf "counters.%s: expected int" k))
        (Ok ()) fields
    | _ -> Error "missing counters object"
  in
  match Json.member "occupancy" j with
  | Some (Json.Obj _) -> Ok ()
  | _ -> Error "missing occupancy object"

(* Validate a whole stream file: schema, dense seq from 0, strictly
   increasing cycles.  Returns the snapshot count. *)
let validate_file ~path =
  let ic = open_in path in
  let rec go lineno seq last_cycle =
    match input_line ic with
    | exception End_of_file -> Ok seq
    | "" -> go (lineno + 1) seq last_cycle
    | line -> (
      match Json.of_string line with
      | exception Failure msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | j -> (
        match validate_snapshot ~expect_seq:seq j with
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        | Ok () -> (
          match Json.member "cycle" j with
          | Some (Json.Int c) when c > last_cycle -> go (lineno + 1) (seq + 1) c
          | Some (Json.Int c) ->
            Error
              (Printf.sprintf "line %d: cycle %d not increasing (last %d)"
                 lineno c last_cycle)
          | _ -> Error (Printf.sprintf "line %d: missing cycle" lineno))))
  in
  let r = go 1 0 (-1) in
  close_in ic;
  r
