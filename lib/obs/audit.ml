type channel = Arbiter | Mshr | Uq_dq | Dram | Cache | Walk | Purge | Sample

let all_channels = [ Arbiter; Mshr; Uq_dq; Dram; Cache; Walk; Purge; Sample ]

let channel_name = function
  | Arbiter -> "llc-arbiter"
  | Mshr -> "llc-mshr"
  | Uq_dq -> "llc-uq-dq"
  | Dram -> "dram-cmd"
  | Cache -> "cache-fill"
  | Walk -> "page-walk"
  | Purge -> "purge"
  | Sample -> "sample"

let channel_of_event = function
  | Trace.Arb_grant _ | Trace.Arb_idle _ -> Arbiter
  | Trace.Mshr_alloc _ | Trace.Mshr_free _ -> Mshr
  | Trace.Uq_send _ | Trace.Dq_retry _ -> Uq_dq
  | Trace.Dram_cmd _ -> Dram
  | Trace.Cache_miss _ | Trace.Cache_fill _ -> Cache
  | Trace.Walk_start _ | Trace.Walk_end _ -> Walk
  | Trace.Purge_begin _ | Trace.Purge_phase _ | Trace.Purge_end _ -> Purge
  | Trace.Counter _ -> Sample

type divergence = {
  d_index : int;
  d_cycle_a : int option;
  d_cycle_b : int option;
  d_label_a : string;
  d_label_b : string;
}

type channel_verdict = {
  v_channel : channel;
  v_events_a : int;
  v_events_b : int;
  v_first : divergence option;
}

type report = {
  r_label_a : string;
  r_label_b : string;
  r_events_a : int;
  r_events_b : int;
  r_first : divergence option;
  r_channels : channel_verdict list;
}

let eos = "<end-of-stream>"

(* First index where the streams disagree on (cycle, label); a stream
   that ends early diverges at its end. *)
let first_divergence a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | (ca, ea) :: ta, (cb, eb) :: tb ->
      let la = Trace.event_label ea and lb = Trace.event_label eb in
      if ca = cb && la = lb then go (i + 1) ta tb
      else
        Some
          {
            d_index = i;
            d_cycle_a = Some ca;
            d_cycle_b = Some cb;
            d_label_a = la;
            d_label_b = lb;
          }
    | (ca, ea) :: _, [] ->
      Some
        {
          d_index = i;
          d_cycle_a = Some ca;
          d_cycle_b = None;
          d_label_a = Trace.event_label ea;
          d_label_b = eos;
        }
    | [], (cb, eb) :: _ ->
      Some
        {
          d_index = i;
          d_cycle_a = None;
          d_cycle_b = Some cb;
          d_label_a = eos;
          d_label_b = Trace.event_label eb;
        }
  in
  go 0 a b

let diff ?(label_a = "a") ?(label_b = "b") a b =
  let channel_events ch evs =
    List.filter (fun (_, e) -> channel_of_event e = ch) evs
  in
  let channels =
    List.map
      (fun ch ->
        let ea = channel_events ch a and eb = channel_events ch b in
        {
          v_channel = ch;
          v_events_a = List.length ea;
          v_events_b = List.length eb;
          v_first = first_divergence ea eb;
        })
      all_channels
  in
  {
    r_label_a = label_a;
    r_label_b = label_b;
    r_events_a = List.length a;
    r_events_b = List.length b;
    r_first = first_divergence a b;
    r_channels = channels;
  }

let clean r = r.r_first = None

(* Order diverging channels by when the disagreement happens, taking the
   earliest cycle stamp present on either side. *)
let divergence_cycle d =
  match (d.d_cycle_a, d.d_cycle_b) with
  | Some a, Some b -> min a b
  | Some a, None -> a
  | None, Some b -> b
  | None, None -> max_int

let leaking_channels r =
  List.filter_map
    (fun v -> Option.map (fun d -> (divergence_cycle d, v.v_channel)) v.v_first)
    r.r_channels
  |> List.sort compare
  |> List.map snd

let first_leaking_channel r =
  match leaking_channels r with [] -> None | ch :: _ -> Some ch

(* The earliest victim-visible cycle at which the two streams disagree —
   the number the bisector's slice report refines down to a component
   and field diff. *)
let first_divergence_cycle r =
  match r.r_first with
  | Some d ->
    let c = divergence_cycle d in
    if c = max_int then None else Some c
  | None -> None

let pp_divergence ppf d =
  let side c l =
    match c with
    | Some c -> Printf.sprintf "cycle %d: %s" c l
    | None -> l
  in
  Format.fprintf ppf "event #%d: %s  vs  %s" d.d_index
    (side d.d_cycle_a d.d_label_a)
    (side d.d_cycle_b d.d_label_b)

let pp_report ppf r =
  Format.fprintf ppf "audit %s vs %s: %d vs %d events@." r.r_label_a r.r_label_b
    r.r_events_a r.r_events_b;
  (match r.r_first with
  | None -> Format.fprintf ppf "  streams bit-identical (no divergence)@."
  | Some d -> Format.fprintf ppf "  FIRST DIVERGENCE %a@." pp_divergence d);
  List.iter
    (fun v ->
      if v.v_events_a > 0 || v.v_events_b > 0 || v.v_first <> None then
        match v.v_first with
        | None ->
          Format.fprintf ppf "  %-12s ok (%d events)@."
            (channel_name v.v_channel) v.v_events_a
        | Some d ->
          Format.fprintf ppf "  %-12s DIVERGES at %a@."
            (channel_name v.v_channel) pp_divergence d)
    r.r_channels

let divergence_to_json d =
  let cyc = function Some c -> Json.Int c | None -> Json.Null in
  Json.Obj
    [
      ("index", Json.Int d.d_index);
      ("cycle_a", cyc d.d_cycle_a);
      ("cycle_b", cyc d.d_cycle_b);
      ("label_a", Json.String d.d_label_a);
      ("label_b", Json.String d.d_label_b);
    ]

let report_to_json r =
  Json.Obj
    [
      ("label_a", Json.String r.r_label_a);
      ("label_b", Json.String r.r_label_b);
      ("events_a", Json.Int r.r_events_a);
      ("events_b", Json.Int r.r_events_b);
      ("clean", Json.Bool (clean r));
      ( "first_divergence",
        match r.r_first with
        | None -> Json.Null
        | Some d -> divergence_to_json d );
      ( "first_divergence_cycle",
        match first_divergence_cycle r with
        | Some c -> Json.Int c
        | None -> Json.Null );
      ( "channels",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("channel", Json.String (channel_name v.v_channel));
                   ("events_a", Json.Int v.v_events_a);
                   ("events_b", Json.Int v.v_events_b);
                   ("clean", Json.Bool (v.v_first = None));
                   ( "first_divergence",
                     match v.v_first with
                     | None -> Json.Null
                     | Some d -> divergence_to_json d );
                 ])
             r.r_channels) );
    ]
