type 'ck t = {
  interval : int;
  capacity : int;
  save : unit -> 'ck;
  cycle_of : 'ck -> int;
  ring : 'ck option array;
  mutable head : int; (* next write slot *)
  mutable count : int;
  mutable taken : int;
  mutable mem_hw_words : int;
}

let create ~interval ~capacity ~save ~cycle_of =
  if interval <= 0 then invalid_arg "Replay.create: interval must be positive";
  if capacity <= 0 then invalid_arg "Replay.create: capacity must be positive";
  {
    interval;
    capacity;
    save;
    cycle_of;
    ring = Array.make capacity None;
    head = 0;
    count = 0;
    taken = 0;
    mem_hw_words = 0;
  }

let interval t = t.interval
let count t = t.count
let taken t = t.taken

let record t =
  t.ring.(t.head) <- Some (t.save ());
  t.head <- (t.head + 1) mod t.capacity;
  t.count <- min t.capacity (t.count + 1);
  t.taken <- t.taken + 1;
  (* The ring bounds live checkpoints; the high-water mark is what the
     perf DB tracks as the recorder's memory cost. *)
  t.mem_hw_words <- max t.mem_hw_words (Obj.reachable_words (Obj.repr t.ring))

let observe t ~cycle = if cycle mod t.interval = 0 then record t

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.count - 1 do
    (* Oldest first: count slots ending just before head. *)
    let idx = (t.head - t.count + i + t.capacity) mod t.capacity in
    match t.ring.(idx) with
    | Some ck -> acc := f !acc ck
    | None -> ()
  done;
  !acc

let nearest t ~cycle =
  fold
    (fun best ck ->
      let c = t.cycle_of ck in
      if c > cycle then best
      else
        match best with
        | Some b when t.cycle_of b >= c -> best
        | _ -> Some ck)
    None t

let checkpoints t = List.rev (fold (fun acc ck -> ck :: acc) [] t)
let oldest_cycle t = match checkpoints t with [] -> None | ck :: _ -> Some (t.cycle_of ck)
let mem_high_water_words t = t.mem_hw_words
