(** Minimal JSON values: just enough for the observability exporters
    (Chrome traces, metrics snapshots, bench results) without an external
    dependency.  The parser exists so tests and CI can check that every
    export stays machine-readable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_buffer buf v] appends the compact serialization of [v]. *)
val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

(** [of_string s] parses one JSON value (surrounding whitespace allowed).
    Raises [Failure] with a position on malformed input. *)
val of_string : string -> t

(** [member name v] is the field [name] of object [v], if any. *)
val member : string -> t -> t option
