(** Structure-occupancy sampling and the quiet-cycle detector.

    The machine calls {!sample} once per cycle with each structure's
    current occupancy (log2-histogrammed) and {!note_cycle} with its
    structural signature (see {!Mi6_util.Statesig}) plus the cycle's
    CPI-stack attribution.  A cycle whose signature equals the previous
    cycle's mutated no structure — nothing but the clock advanced — and
    counts as {e quiet}, i.e. fast-forwardable by an event-driven core.
    Quiet counts are kept per stall cause so the fast-forward payoff can
    be attributed (purge and LLC/DRAM stalls are mostly quiet; commit
    cycles never are).

    Excluded from "structure" on both the signature and the oracle side
    (they only ever change in cycles that also move a queue or a
    state machine): branch predictors, TLB/translation-cache contents and
    LRU, cache data arrays and replacement metadata, physical-register
    scoreboards, and all observability state (stats, histograms, trace
    rings).

    The disabled singleton {!null} makes every probe one branch. *)

type t

val null : t
val create : unit -> t
val enabled : t -> bool

(** One occupancy sample per structure, called once per machine cycle. *)
val sample :
  t -> rob:int -> iq:int -> lq:int -> sq:int -> sb:int -> mshr:int -> unit

(** [note_cycle t ~signature ~cause] classifies the just-finished cycle.
    [cause] indexes {!Cpistack.categories} (out-of-range values count as
    ["other"]). *)
val note_cycle : t -> signature:int -> cause:int -> unit

val cycles : t -> int
val quiet_cycles : t -> int
val quiet_fraction : t -> float

(** [(cause, quiet, total)] per cause seen at least once,
    {!Cpistack.categories} order. *)
val by_cause : t -> (string * int * int) list

(** Register the occupancy histograms ([occupancy.*]) and quiet-cycle
    gauges ([quiet.*]) into a metrics registry. *)
val register : t -> Metrics.t -> unit

val to_json : t -> Json.t
