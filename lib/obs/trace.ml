type category = Core | L1 | Llc | Dram | Ptw | Purge

let all_categories = [ Core; L1; Llc; Dram; Ptw; Purge ]

let category_name = function
  | Core -> "core"
  | L1 -> "l1"
  | Llc -> "llc"
  | Dram -> "dram"
  | Ptw -> "ptw"
  | Purge -> "purge"

let category_of_name s =
  match String.lowercase_ascii s with
  | "core" -> Some Core
  | "l1" -> Some L1
  | "llc" -> Some Llc
  | "dram" -> Some Dram
  | "ptw" -> Some Ptw
  | "purge" -> Some Purge
  | _ -> None

let cat_bit = function
  | Core -> 1
  | L1 -> 2
  | Llc -> 4
  | Dram -> 8
  | Ptw -> 16
  | Purge -> 32

type event =
  | Counter of { core : int; name : string; value : int }
  | Cache_miss of { cache : string; line : int }
  | Cache_fill of { cache : string; line : int }
  | Arb_grant of { core : int; kind : string }
  | Arb_idle of { core : int }
  | Mshr_alloc of { core : int; idx : int; line : int }
  | Mshr_free of { core : int; idx : int }
  | Uq_send of { core : int; line : int }
  | Dq_retry of { core : int; idx : int }
  | Dram_cmd of { bank : int; read : bool; row_hit : bool; line : int }
  | Purge_begin of { core : int; kind : string }
  | Purge_phase of { core : int; phase : string }
  | Purge_end of { core : int; cycles : int }
  | Walk_start of { core : int; vpage : int }
  | Walk_end of { core : int; vpage : int; reads : int }

let category_of_event = function
  | Counter _ -> Core
  | Cache_miss _ | Cache_fill _ -> L1
  | Arb_grant _ | Arb_idle _ | Mshr_alloc _ | Mshr_free _ | Uq_send _
  | Dq_retry _ ->
    Llc
  | Dram_cmd _ -> Dram
  | Purge_begin _ | Purge_phase _ | Purge_end _ -> Purge
  | Walk_start _ | Walk_end _ -> Ptw

let event_core = function
  | Counter { core; _ }
  | Arb_grant { core; _ }
  | Arb_idle { core }
  | Mshr_alloc { core; _ }
  | Mshr_free { core; _ }
  | Uq_send { core; _ }
  | Dq_retry { core; _ }
  | Purge_begin { core; _ }
  | Purge_phase { core; _ }
  | Purge_end { core; _ }
  | Walk_start { core; _ }
  | Walk_end { core; _ } ->
    Some core
  | Cache_miss _ | Cache_fill _ | Dram_cmd _ -> None

(* Event kinds (constructors) — the unit of drop accounting: when the
   ring overwrites, knowing *what* was lost tells whether a timeline
   analysis is invalidated (a dropped counter sample is cosmetic; a
   dropped LLC arbiter grant is not). *)

let kind_names =
  [|
    "counter"; "cache_miss"; "cache_fill"; "arb_grant"; "arb_idle";
    "mshr_alloc"; "mshr_free"; "uq_send"; "dq_retry"; "dram_cmd";
    "purge_begin"; "purge_phase"; "purge_end"; "walk_start"; "walk_end";
  |]

let n_kinds = Array.length kind_names

let kind_index = function
  | Counter _ -> 0
  | Cache_miss _ -> 1
  | Cache_fill _ -> 2
  | Arb_grant _ -> 3
  | Arb_idle _ -> 4
  | Mshr_alloc _ -> 5
  | Mshr_free _ -> 6
  | Uq_send _ -> 7
  | Dq_retry _ -> 8
  | Dram_cmd _ -> 9
  | Purge_begin _ -> 10
  | Purge_phase _ -> 11
  | Purge_end _ -> 12
  | Walk_start _ -> 13
  | Walk_end _ -> 14

let event_kind_name ev = kind_names.(kind_index ev)

let event_label = function
  | Counter { core; name; value } ->
    Printf.sprintf "counter core=%d %s=%d" core name value
  | Cache_miss { cache; line } -> Printf.sprintf "miss %s line=%#x" cache line
  | Cache_fill { cache; line } -> Printf.sprintf "fill %s line=%#x" cache line
  | Arb_grant { core; kind } ->
    Printf.sprintf "arb_grant core=%d kind=%s" core kind
  | Arb_idle { core } -> Printf.sprintf "arb_idle core=%d" core
  | Mshr_alloc { core; idx; line } ->
    Printf.sprintf "mshr_alloc core=%d idx=%d line=%#x" core idx line
  | Mshr_free { core; idx } -> Printf.sprintf "mshr_free core=%d idx=%d" core idx
  | Uq_send { core; line } -> Printf.sprintf "uq_send core=%d line=%#x" core line
  | Dq_retry { core; idx } -> Printf.sprintf "dq_retry core=%d idx=%d" core idx
  | Dram_cmd { bank; read; row_hit; line } ->
    Printf.sprintf "dram_%s bank=%d row_%s line=%#x"
      (if read then "read" else "write")
      bank
      (if row_hit then "hit" else "miss")
      line
  | Purge_begin { core; kind } ->
    Printf.sprintf "purge_begin core=%d kind=%s" core kind
  | Purge_phase { core; phase } ->
    Printf.sprintf "purge_phase core=%d phase=%s" core phase
  | Purge_end { core; cycles } ->
    Printf.sprintf "purge_end core=%d cycles=%d" core cycles
  | Walk_start { core; vpage } ->
    Printf.sprintf "walk_start core=%d vpage=%#x" core vpage
  | Walk_end { core; vpage; reads } ->
    Printf.sprintf "walk_end core=%d vpage=%#x reads=%d" core vpage reads

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

type slot = { s_cycle : int; s_event : event }

type t = {
  enabled : bool;
  mask : int; (* bitwise-or of enabled categories' bits *)
  buf : slot array; (* length 0 for [null] *)
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable drops : int;
  drop_counts : int array; (* per event kind, length n_kinds *)
}

let null =
  {
    enabled = false;
    mask = 0;
    buf = [||];
    head = 0;
    len = 0;
    drops = 0;
    drop_counts = [||];
  }

let create ?(capacity = 65536) ?filter () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  let cats = match filter with None -> all_categories | Some cs -> cs in
  let mask = List.fold_left (fun m c -> m lor cat_bit c) 0 cats in
  {
    enabled = true;
    mask;
    buf = Array.make capacity { s_cycle = 0; s_event = Arb_idle { core = 0 } };
    head = 0;
    len = 0;
    drops = 0;
    drop_counts = Array.make n_kinds 0;
  }

let active t cat = t.enabled && t.mask land cat_bit cat <> 0

let emit t ~now ev =
  if t.enabled && t.mask land cat_bit (category_of_event ev) <> 0 then begin
    let cap = Array.length t.buf in
    if t.len < cap then t.len <- t.len + 1
    else begin
      (* Full ring: the slot about to be overwritten holds the oldest
         event — charge the drop to its kind before losing it. *)
      t.drops <- t.drops + 1;
      let k = kind_index t.buf.(t.head).s_event in
      t.drop_counts.(k) <- t.drop_counts.(k) + 1
    end;
    t.buf.(t.head) <- { s_cycle = now; s_event = ev };
    t.head <- (t.head + 1) mod cap
  end

let length t = t.len
let dropped t = t.drops

let dropped_by_kind t =
  if Array.length t.drop_counts = 0 then []
  else begin
    let rows = ref [] in
    Array.iteri
      (fun k c -> if c > 0 then rows := (kind_names.(k), c) :: !rows)
      t.drop_counts;
    (* Dominant kind first; name breaks ties deterministically. *)
    List.sort
      (fun (na, ca) (nb, cb) ->
        if ca <> cb then compare cb ca else compare na nb)
      !rows
  end

let dominant_dropped t =
  match dropped_by_kind t with [] -> None | top :: _ -> Some top

let iter t f =
  let cap = Array.length t.buf in
  if cap > 0 then begin
    let start = (t.head - t.len + cap) mod cap in
    for i = 0 to t.len - 1 do
      let s = t.buf.((start + i) mod cap) in
      f ~cycle:s.s_cycle s.s_event
    done
  end

let events t =
  let acc = ref [] in
  iter t (fun ~cycle ev -> acc := (cycle, ev) :: !acc);
  List.rev !acc

let reset t =
  t.head <- 0;
  t.len <- 0;
  t.drops <- 0;
  Array.fill t.drop_counts 0 (Array.length t.drop_counts) 0

(* In-place checkpoint/restore: the live window is saved oldest-first and
   written back at position 0, so a restored ring renders byte-identically
   even though the physical head moved. *)
type checkpoint = {
  c_slots : slot array;
  c_drops : int;
  c_drop_counts : int array;
}

let save t =
  let cap = Array.length t.buf in
  let start = if cap = 0 then 0 else (t.head - t.len + cap) mod cap in
  {
    c_slots =
      Array.init t.len (fun i -> t.buf.((start + i) mod (Stdlib.max cap 1)));
    c_drops = t.drops;
    c_drop_counts = Array.copy t.drop_counts;
  }

let restore t ck =
  if Array.length t.buf > 0 then begin
    reset t;
    Array.iteri (fun i s -> t.buf.(i) <- s) ck.c_slots;
    t.len <- Array.length ck.c_slots;
    t.head <- t.len mod Array.length t.buf;
    t.drops <- ck.c_drops;
    Array.blit ck.c_drop_counts 0 t.drop_counts 0 (Array.length t.drop_counts)
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* Chrome trace_event mapping: one simulated cycle = 1 µs of trace time;
   pid 0 is the machine, tid is the core (or 100+bank for DRAM).  Purges
   become B/E duration slices, occupancy samples counter tracks, and
   everything else an instant event with its fields in args. *)
let to_chrome_json t =
  let obj ~name ~ph ~cycle ~tid ~cat ?(args = []) () =
    Json.Obj
      ([
         ("name", Json.String name);
         ("ph", Json.String ph);
         ("ts", Json.Int cycle);
         ("pid", Json.Int 0);
         ("tid", Json.Int tid);
         ("cat", Json.String cat);
       ]
      @ (if ph = "i" then [ ("s", Json.String "t") ] else [])
      @ match args with [] -> [] | a -> [ ("args", Json.Obj a) ])
  in
  let acc = ref [] in
  iter t (fun ~cycle ev ->
      let cat = category_name (category_of_event ev) in
      let tid = match event_core ev with Some c -> c | None -> 0 in
      let e =
        match ev with
        | Counter { core; name; value } ->
          obj ~name ~ph:"C" ~cycle ~tid:core ~cat
            ~args:[ (name, Json.Int value) ]
            ()
        | Cache_miss { cache; line } ->
          obj ~name:(cache ^ ".miss") ~ph:"i" ~cycle ~tid ~cat
            ~args:[ ("line", Json.Int line) ]
            ()
        | Cache_fill { cache; line } ->
          obj ~name:(cache ^ ".fill") ~ph:"i" ~cycle ~tid ~cat
            ~args:[ ("line", Json.Int line) ]
            ()
        | Arb_grant { core; kind } ->
          obj ~name:"llc.arb_grant" ~ph:"i" ~cycle ~tid:core ~cat
            ~args:[ ("kind", Json.String kind) ]
            ()
        | Arb_idle { core } ->
          obj ~name:"llc.arb_idle" ~ph:"i" ~cycle ~tid:core ~cat ()
        | Mshr_alloc { core; idx; line } ->
          obj ~name:"llc.mshr_alloc" ~ph:"i" ~cycle ~tid:core ~cat
            ~args:[ ("idx", Json.Int idx); ("line", Json.Int line) ]
            ()
        | Mshr_free { core; idx } ->
          obj ~name:"llc.mshr_free" ~ph:"i" ~cycle ~tid:core ~cat
            ~args:[ ("idx", Json.Int idx) ]
            ()
        | Uq_send { core; line } ->
          obj ~name:"llc.uq_send" ~ph:"i" ~cycle ~tid:core ~cat
            ~args:[ ("line", Json.Int line) ]
            ()
        | Dq_retry { core; idx } ->
          obj ~name:"llc.dq_retry" ~ph:"i" ~cycle ~tid:core ~cat
            ~args:[ ("idx", Json.Int idx) ]
            ()
        | Dram_cmd { bank; read; row_hit; line } ->
          obj
            ~name:(if read then "dram.read" else "dram.write")
            ~ph:"i" ~cycle ~tid:(100 + bank) ~cat
            ~args:
              [
                ("bank", Json.Int bank);
                ("row_hit", Json.Bool row_hit);
                ("line", Json.Int line);
              ]
            ()
        | Purge_begin { core; kind } ->
          obj ~name:"purge" ~ph:"B" ~cycle ~tid:core ~cat
            ~args:[ ("kind", Json.String kind) ]
            ()
        | Purge_phase { core; phase } ->
          obj ~name:("purge." ^ phase) ~ph:"i" ~cycle ~tid:core ~cat ()
        | Purge_end { core; cycles } ->
          obj ~name:"purge" ~ph:"E" ~cycle ~tid:core ~cat
            ~args:[ ("cycles", Json.Int cycles) ]
            ()
        | Walk_start { core; vpage } ->
          obj ~name:"ptw.walk_start" ~ph:"i" ~cycle ~tid:core ~cat
            ~args:[ ("vpage", Json.Int vpage) ]
            ()
        | Walk_end { core; vpage; reads } ->
          obj ~name:"ptw.walk_end" ~ph:"i" ~cycle ~tid:core ~cat
            ~args:[ ("vpage", Json.Int vpage); ("reads", Json.Int reads) ]
            ()
      in
      acc := e :: !acc);
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !acc));
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "1 cycle = 1 us");
            ("dropped_events", Json.Int t.drops);
            ( "dropped_by_kind",
              Json.Obj
                (List.map (fun (k, c) -> (k, Json.Int c)) (dropped_by_kind t))
            );
          ] );
    ]

let pp ppf t =
  if t.drops > 0 then
    Format.fprintf ppf "# %d oldest events dropped (ring capacity %d)@."
      t.drops (Array.length t.buf);
  iter t (fun ~cycle ev ->
      Format.fprintf ppf "%10d  %-5s %s@." cycle
        (category_name (category_of_event ev))
        (event_label ev))
