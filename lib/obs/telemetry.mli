(** Streaming JSONL telemetry snapshots.

    One schema-versioned JSON object per line, emitted every [every]
    machine cycles while a run is in progress: counter deltas since the
    previous snapshot, cumulative occupancy / quiet-cycle summaries, and
    (unless deterministic) a [host] section with wall-clock, kips, and
    the self-profiler's phase report.  [mi6_sim top] renders a live table
    from the stream; [json_check --telemetry] validates one.

    {b Schema version policy} ([schema] field, currently
    ["mi6.telemetry/1"]): adding fields is backward-compatible and keeps
    the version; removing or re-typing a field bumps it.  Consumers must
    ignore unknown fields and reject unknown versions.

    Deterministic mode omits every host-time-derived field, so two runs
    of the same cell produce byte-identical streams — the sweep uses it
    to keep per-cell telemetry files independent of [--jobs]. *)

val schema_version : string

type t

(** Disabled: [maybe_emit] is one branch. *)
val null : t

(** [create ~every ~path ()] opens [path] (truncating) and snapshots
    every [every] cycles.  [deterministic] (default false) omits the
    [host] section. *)
val create : ?deterministic:bool -> every:int -> path:string -> unit -> t

val enabled : t -> bool
val every : t -> int

(** Snapshots emitted so far. *)
val snapshots : t -> int

(** [maybe_emit t ~cycle ...] emits a snapshot when [cycle] is a nonzero
    multiple of [every]; [counters] is forced only then (pass the full
    sorted counter view, e.g. [Stats.to_assoc]). *)
val maybe_emit :
  t ->
  cycle:int ->
  instrs:int ->
  counters:(unit -> (string * int) list) ->
  occupancy:Occupancy.t ->
  selfprof:Selfprof.t ->
  unit

(** Flushes and closes the stream (no final snapshot). *)
val close : t -> unit

(** [validate_snapshot ?expect_seq j] — schema, required fields, and
    (when given) the expected sequence number. *)
val validate_snapshot : ?expect_seq:int -> Json.t -> (unit, string) result

(** [validate_file ~path] — every line parses and validates, [seq] is
    dense from 0, cycles strictly increase.  Returns the snapshot
    count. *)
val validate_file : path:string -> (int, string) result
