(* Host-cost self-profiling: where does the simulator (not the simulated
   machine) spend wall time and allocation?

   The profiler is a single-phase stopwatch: at any instant one phase is
   "current", and switching phases charges the elapsed wall time and
   minor-heap allocation to the phase being left.  Stage boundaries in
   [Core.tick] / [Tmachine.tick] / [Llc.tick] switch phases around each
   stage, restoring the previous phase afterwards, so nesting (the DRAM
   controller ticking inside the LLC tick) attributes correctly.

   Time not inside any instrumented segment — stream generation, stats
   bookkeeping, the run loop itself — lands in the [harness] phase, which
   is the current phase between [run_begin] and the first switch.  Because
   every instant of the run window belongs to exactly one phase, the
   per-phase times sum to the measured wall time by construction.

   Like [Trace.null], the disabled singleton makes every probe a single
   branch; an uninstrumented run pays (almost) nothing. *)

let phase_names =
  [|
    "fetch"; "rename"; "issue"; "exec"; "mem"; "commit"; "purge";
    "l1"; "llc"; "dram"; "ptw"; "harness";
  |]

let n_phases = Array.length phase_names

let ph_fetch = 0
let ph_rename = 1
let ph_issue = 2
let ph_exec = 3
let ph_mem = 4
let ph_commit = 5
let ph_purge = 6
let ph_l1 = 7
let ph_llc = 8
let ph_dram = 9
let ph_ptw = 10
let ph_harness = 11

let phase_name i = phase_names.(i)

type t = {
  enabled : bool;
  times : float array; (* seconds charged per phase *)
  allocs : float array; (* minor-heap words charged per phase *)
  mutable cur : int;
  mutable last_t : float;
  mutable last_a : float;
  mutable wall : float; (* accumulated run-window wall seconds *)
  mutable cycles : int; (* cycles ticked inside run windows *)
  mutable instrs : int;
  mutable run_start : float;
  mutable series : (float * int * int) list; (* elapsed_s, cycles, instrs; newest first *)
}

let null =
  {
    enabled = false;
    times = [||];
    allocs = [||];
    cur = ph_harness;
    last_t = 0.0;
    last_a = 0.0;
    wall = 0.0;
    cycles = 0;
    instrs = 0;
    run_start = 0.0;
    series = [];
  }

let create () =
  {
    enabled = true;
    times = Array.make n_phases 0.0;
    allocs = Array.make n_phases 0.0;
    cur = ph_harness;
    last_t = Unix.gettimeofday ();
    last_a = Gc.minor_words ();
    wall = 0.0;
    cycles = 0;
    instrs = 0;
    run_start = 0.0;
    series = [];
  }

let enabled t = t.enabled

let switch t p =
  if not t.enabled then p
  else begin
    let now = Unix.gettimeofday () in
    let a = Gc.minor_words () in
    t.times.(t.cur) <- t.times.(t.cur) +. (now -. t.last_t);
    t.allocs.(t.cur) <- t.allocs.(t.cur) +. (a -. t.last_a);
    let prev = t.cur in
    t.cur <- p;
    t.last_t <- now;
    t.last_a <- a;
    prev
  end

let restore t p = if t.enabled then ignore (switch t p)

let run_begin t =
  if t.enabled then begin
    t.cur <- ph_harness;
    t.last_t <- Unix.gettimeofday ();
    t.last_a <- Gc.minor_words ();
    t.run_start <- t.last_t
  end

let run_end t ~cycles ~instrs =
  if t.enabled then begin
    restore t ph_harness; (* flush the tail into the accumulators *)
    t.wall <- t.wall +. (t.last_t -. t.run_start);
    t.cycles <- t.cycles + cycles;
    t.instrs <- t.instrs + instrs;
    t.series <- (t.last_t -. t.run_start, cycles, instrs) :: t.series
  end

let sample t ~cycles ~instrs =
  if t.enabled then
    t.series <- (Unix.gettimeofday () -. t.run_start, cycles, instrs) :: t.series

let wall_seconds t = t.wall
let cycles t = t.cycles

let phase_seconds t p = if t.enabled then t.times.(p) else 0.0

let bytes_per_word = float_of_int (Sys.word_size / 8)

let phase_alloc_bytes t p =
  if t.enabled then t.allocs.(p) *. bytes_per_word else 0.0

let kips_series t = List.rev t.series

let overall_kips t =
  if t.wall <= 0.0 then 0.0
  else float_of_int t.cycles /. t.wall /. 1000.0

(* (name, seconds, ns/cycle, alloc bytes/cycle) per phase, phase order. *)
let report t =
  let cyc = float_of_int (max 1 t.cycles) in
  List.init n_phases (fun p ->
      ( phase_names.(p),
        phase_seconds t p,
        phase_seconds t p *. 1e9 /. cyc,
        phase_alloc_bytes t p /. cyc ))

let to_json t =
  let cyc = float_of_int (max 1 t.cycles) in
  Json.Obj
    [
      ("wall_s", Json.Float t.wall);
      ("cycles", Json.Int t.cycles);
      ("instrs", Json.Int t.instrs);
      ("kips", Json.Float (overall_kips t));
      ( "phases",
        Json.Obj
          (List.init n_phases (fun p ->
               ( phase_names.(p),
                 Json.Obj
                   [
                     ("seconds", Json.Float (phase_seconds t p));
                     ("ns_per_cycle", Json.Float (phase_seconds t p *. 1e9 /. cyc));
                     ( "alloc_bytes_per_cycle",
                       Json.Float (phase_alloc_bytes t p /. cyc) );
                   ] ))) );
    ]
