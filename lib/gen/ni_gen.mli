(** qcheck generation and shrinking of adversarial interrupt schedules.

    Lives next to {!Body} (rather than in [mi6_core]) so the simulator
    core stays free of the qcheck dependency.  The shrinker is explicit
    — {!shrink} returns candidate simplifications, every one strictly
    smaller under {!measure} — because both the qcheck property and the
    [mi6_sim ni] CLI need it: a falsifying schedule is greedily shrunk
    to a fixpoint before it is printed, and each accepted step is
    re-checked to still falsify. *)

val gen :
  ?variant:Mi6_core.Config.variant -> unit -> Mi6_core.Schedule.t QCheck.Gen.t

(** [sample ~seed ~count ()] — the deterministic schedule list the seed
    denotes; what [mi6_sim ni] fans out over its domain pool. *)
val sample :
  ?variant:Mi6_core.Config.variant ->
  seed:int ->
  count:int ->
  unit ->
  Mi6_core.Schedule.t list

(** Candidate simplifications: drop a preemption point, halve or
    decrement an instruction/cycle index, replace an attacker with
    [Probe], shrink the body seed.  All strictly decrease {!measure}. *)
val shrink : Mi6_core.Schedule.t -> Mi6_core.Schedule.t list

(** Well-founded size used to prove shrink termination/monotonicity:
    lexicographic (point count, index sum, attacker ranks, body seed). *)
val measure : Mi6_core.Schedule.t -> int * int * int * int

(** [greedy_shrink ~falsifies s] — repeatedly take the first {!shrink}
    candidate that still falsifies, until none does.  [s] itself must
    falsify. *)
val greedy_shrink :
  falsifies:(Mi6_core.Schedule.t -> bool) ->
  Mi6_core.Schedule.t ->
  Mi6_core.Schedule.t

(** Arbitrary with {!Mi6_core.Schedule.to_string} printing and {!shrink}
    shrinking. *)
val arbitrary :
  ?variant:Mi6_core.Config.variant -> unit -> Mi6_core.Schedule.t QCheck.arbitrary
