open Mi6_isa

let ops_of_seed seed =
  (* A fresh Random.State per call: the stream must depend on the seed
     alone, never on how many bodies were drawn before this one. *)
  let rand = Random.State.make [| 0x6e6973; seed |] in
  QCheck.Gen.generate1 ~rand (Gen_programs.ops_gen ())

let uops_of_seed seed =
  let prog =
    Asm.assemble ~base:Gen_programs.code_base
      (Gen_programs.materialize (ops_of_seed seed))
  in
  let run =
    Mi6_core.Difftest.run_func ~program:prog
      ~data_base:Gen_programs.data_base ~data_bytes:Gen_programs.data_bytes
      ~max_steps:20_000 ()
  in
  Mi6_core.Difftest.to_uops run ~func_code_base:Gen_programs.code_base
    ~func_data_base:Gen_programs.data_base

let check ?max_cycles (s : Mi6_core.Schedule.t) =
  Mi6_core.Schedule.check ?max_cycles
    ~body:(uops_of_seed s.Mi6_core.Schedule.body_seed)
    s

let localize ?max_cycles (s : Mi6_core.Schedule.t) =
  Mi6_core.Schedule.localize ?max_cycles
    ~body:(uops_of_seed s.Mi6_core.Schedule.body_seed)
    s
