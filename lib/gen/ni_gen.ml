module S = Mi6_core.Schedule

let gen ?(variant = Mi6_core.Config.Fpma) () =
  let open QCheck.Gen in
  let attacker = oneofl S.attackers in
  let point =
    map2
      (fun at attacker -> { S.at; attacker })
      (frequency
         [
           (3, map (fun i -> S.At_instr i) (int_range 0 60));
           (1, map (fun c -> S.At_cycle c) (int_range 0 6000));
         ])
      attacker
  in
  map3
    (fun body_seed points final ->
      { S.variant; body_seed; points; final })
    (int_range 0 99_999)
    (list_size (int_range 0 4) point)
    attacker

let sample ?variant ~seed ~count () =
  (* A fresh Random.State keyed on the seed alone, so a printed seed
     pins the exact schedule list a run saw. *)
  let rand = Random.State.make [| 0x6e6967; seed |] in
  QCheck.Gen.generate ~n:count ~rand (gen ?variant ())

let attacker_rank = function
  | S.Probe -> 0
  | S.Train -> 1
  | S.Sweep -> 2
  | S.Stores -> 3

let index_of p = match p.S.at with S.At_instr i -> i | S.At_cycle c -> c

let measure (t : S.t) =
  ( List.length t.S.points,
    List.fold_left (fun acc p -> acc + index_of p) 0 t.S.points,
    List.fold_left (fun acc p -> acc + attacker_rank p.S.attacker) 0 t.S.points
    + attacker_rank t.S.final,
    t.S.body_seed )

let shrink_attacker a = if a = S.Probe then [] else [ S.Probe ]

let shrink_point p =
  let at_candidates =
    match p.S.at with
    | S.At_instr 0 | S.At_cycle 0 -> []
    | S.At_instr i -> [ S.At_instr (i / 2); S.At_instr (i - 1) ]
    | S.At_cycle c -> [ S.At_cycle (c / 2); S.At_cycle (c - 1) ]
  in
  List.map (fun at -> { p with S.at }) at_candidates
  @ List.map (fun a -> { p with S.attacker = a }) (shrink_attacker p.S.attacker)

(* Replace the i-th element by each of its shrinks. *)
let shrink_list_elt shrink_elt xs =
  List.concat
    (List.mapi
       (fun i x ->
         List.map
           (fun x' -> List.mapi (fun j y -> if i = j then x' else y) xs)
           (shrink_elt x))
       xs)

let drop_one xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

let shrink (t : S.t) =
  List.map (fun points -> { t with S.points }) (drop_one t.S.points)
  @ List.map
      (fun points -> { t with S.points })
      (shrink_list_elt shrink_point t.S.points)
  @ (if t.S.body_seed > 0 then
       [
         { t with S.body_seed = t.S.body_seed / 2 };
         { t with S.body_seed = t.S.body_seed - 1 };
       ]
     else [])
  @ List.map (fun a -> { t with S.final = a }) (shrink_attacker t.S.final)

let rec greedy_shrink ~falsifies (t : S.t) =
  match List.find_opt falsifies (shrink t) with
  | Some t' -> greedy_shrink ~falsifies t'
  | None -> t

let arbitrary ?variant () =
  QCheck.make ~print:S.to_string
    ~shrink:(fun t -> QCheck.Iter.of_list (shrink t))
    (gen ?variant ())
