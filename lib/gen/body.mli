(** Deterministic enclave bodies for the interrupt-schedule harness.

    A schedule string must be replayable from nothing but the string, so
    the enclave body under test is identified by a single integer seed:
    [ops_of_seed] draws a random forward-branching RV64IM program from
    the shared {!Gen_programs} generator using a [Random.State] keyed on
    the seed, and [uops_of_seed] runs it on the functional reference
    model and translates the committed path into the µop stream the
    timing core consumes (code remapped into DRAM region 1, data into
    region 2 — the enclave's ranges, exactly as the differential tests
    do). *)

val ops_of_seed : int -> Gen_programs.op list

(** The committed-path µop stream of the seeded program — the enclave
    body a {!Mi6_core.Schedule} preempts.  Deterministic: equal seeds
    give equal streams. *)
val uops_of_seed : int -> Mi6_ooo.Uop.t list

(** [check s] / [localize s] — run the schedule against the body its
    seed denotes (see {!Mi6_core.Schedule.check} / [localize]). *)
val check : ?max_cycles:int -> Mi6_core.Schedule.t -> Mi6_core.Schedule.verdict
val localize : ?max_cycles:int -> Mi6_core.Schedule.t -> Mi6_obs.Audit.report
