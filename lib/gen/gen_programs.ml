(* Random forward-branching RV64IM program generator, shared between the
   func/ooo differential tests (test_diff) and the taint-analysis
   soundness property (test_analysis).

   Branches carry a skip count instead of a label, so any sublist (qcheck
   shrinking) still materializes into a valid forward-branching — and
   therefore terminating — program.

   Extension points for the taint harness:
   - [extra_srcs] adds registers the generated code may {e read} but
     never writes (the prologue does not initialize them either) — the
     soundness property injects its secret there via
     [Difftest.run_func ~init_regs];
   - [indexed] adds a secret-indexable addressing op ([Idx_load]) that
     loads from [data_base + (rs & 0x3F8)], the shape a cache side
     channel needs. *)

open Mi6_isa

let code_base = 0x1000
let data_base = 0x8000
let data_bytes = 1024

(* Scratch registers the generator may write; x31 stays the data
   pointer, x29/x30 are the indexed-addressing scratch pair. *)
let pool = [| 5; 6; 7; 8; 9; 10; 11; 12 |]
let data_ptr = 31
let idx_scratch = 29
let addr_scratch = 30

type op =
  | Li_op of int * int (* rd, value *)
  | Alu3 of Instr.alu_op * int * int * int (* rd, rs1, rs2 *)
  | Alui of Instr.alu_op * int * int * int (* rd, rs1, imm *)
  | Mul3 of Instr.mul_op * int * int * int
  | Ld_op of Instr.load_kind * int * int (* rd, offset *)
  | St_op of Instr.store_kind * int * int (* rs2, offset *)
  | Br_skip of Instr.branch_kind * int * int * int (* rs1, rs2, skip *)
  | J_skip of int (* unconditional skip *)
  | Idx_load of int * int (* rd, rs: load data[rs & 0x3F8] *)

let split_at n xs =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

(* Ops -> assembly items; labels are assigned during materialization so
   they are always defined and always forward. *)
let materialize ops =
  let fresh = ref 0 in
  let rec emit = function
    | [] -> []
    | Li_op (rd, v) :: rest -> Asm.Li (rd, v) :: emit rest
    | Alu3 (op, rd, rs1, rs2) :: rest ->
      Asm.I (Instr.Alu { op; rd; rs1; rs2 }) :: emit rest
    | Alui (op, rd, rs1, imm) :: rest ->
      Asm.I (Instr.Alu_imm { op; rd; rs1; imm }) :: emit rest
    | Mul3 (op, rd, rs1, rs2) :: rest ->
      Asm.I (Instr.Muldiv { op; rd; rs1; rs2 }) :: emit rest
    | Ld_op (kind, rd, offset) :: rest ->
      Asm.I (Instr.Load { kind; rd; rs1 = data_ptr; offset }) :: emit rest
    | St_op (kind, rs2, offset) :: rest ->
      Asm.I (Instr.Store { kind; rs1 = data_ptr; rs2; offset }) :: emit rest
    | Br_skip (kind, rs1, rs2, n) :: rest ->
      let n = min n (List.length rest) in
      let skipped, after = split_at n rest in
      let lbl = Printf.sprintf "L%d" !fresh in
      incr fresh;
      (Asm.Br_to (kind, rs1, rs2, lbl) :: emit skipped)
      @ (Asm.Label lbl :: emit after)
    | J_skip n :: rest ->
      let n = min n (List.length rest) in
      let skipped, after = split_at n rest in
      let lbl = Printf.sprintf "L%d" !fresh in
      incr fresh;
      (Asm.J lbl :: emit skipped) @ (Asm.Label lbl :: emit after)
    | Idx_load (rd, rs) :: rest ->
      (* Mask keeps the address inside the data window and 8-aligned. *)
      Asm.I (Instr.Alu_imm { op = Instr.And; rd = idx_scratch; rs1 = rs;
                             imm = 0x3F8 })
      :: Asm.I (Instr.Alu { op = Instr.Add; rd = addr_scratch;
                            rs1 = data_ptr; rs2 = idx_scratch })
      :: Asm.I (Instr.Load { kind = Instr.Ld; rd; rs1 = addr_scratch;
                             offset = 0 })
      :: emit rest
  in
  let prologue =
    Asm.Li (data_ptr, data_base)
    :: List.map
         (fun r -> Asm.Li (r, (r * 0x1111) - 0x4000))
         (Array.to_list pool)
  in
  prologue @ emit ops @ [ Asm.Label "halt"; Asm.I Instr.Wfi ]

let op_gen ?(extra_srcs = []) ?(indexed = false) () =
  let open QCheck.Gen in
  let reg = map (fun i -> pool.(i)) (int_range 0 (Array.length pool - 1)) in
  let src =
    frequency
      ((7, reg) :: (1, return data_ptr)
      :: (if extra_srcs = [] then [] else [ (4, oneofl extra_srcs) ]))
  in
  let alu_op =
    oneofl
      [ Instr.Add; Instr.Sub; Instr.Sll; Instr.Slt; Instr.Sltu; Instr.Xor;
        Instr.Srl; Instr.Sra; Instr.Or; Instr.And ]
  in
  (* Shift-immediates need a valid shamt; keep immediates to the
     logic/arith ops. *)
  let alui_op =
    oneofl [ Instr.Add; Instr.Slt; Instr.Sltu; Instr.Xor; Instr.Or; Instr.And ]
  in
  let mul_op =
    oneofl [ Instr.Mul; Instr.Mulh; Instr.Div; Instr.Divu; Instr.Rem;
             Instr.Remu ]
  in
  let br_kind =
    oneofl [ Instr.Beq; Instr.Bne; Instr.Blt; Instr.Bge; Instr.Bltu;
             Instr.Bgeu ]
  in
  frequency
    ([
       (3, map3 (fun op rd (rs1, rs2) -> Alu3 (op, rd, rs1, rs2)) alu_op reg
            (pair src src));
       (3, map3 (fun op rd (rs1, imm) -> Alui (op, rd, rs1, imm)) alui_op reg
            (pair src (int_range (-1024) 1023)));
       (1, map3 (fun op rd (rs1, rs2) -> Mul3 (op, rd, rs1, rs2)) mul_op reg
            (pair src src));
       (1, map2 (fun rd v -> Li_op (rd, v)) reg (int_range (-100_000) 100_000));
       ( 2,
         map3
           (fun kind rd off ->
             let align =
               match kind with Instr.Ld -> 8 | Instr.Lw -> 4 | _ -> 1
             in
             Ld_op (kind, rd, off / align * align))
           (oneofl [ Instr.Ld; Instr.Lw; Instr.Lbu ])
           reg
           (int_range 0 (data_bytes - 9)) );
       ( 2,
         map3
           (fun kind rs2 off ->
             let align =
               match kind with Instr.Sd -> 8 | Instr.Sw -> 4 | _ -> 1
             in
             St_op (kind, rs2, off / align * align))
           (oneofl [ Instr.Sd; Instr.Sw; Instr.Sb ])
           src
           (int_range 0 (data_bytes - 9)) );
       (2, map3 (fun kind (rs1, rs2) n -> Br_skip (kind, rs1, rs2, n)) br_kind
            (pair src src) (int_range 1 4));
       (1, map (fun n -> J_skip n) (int_range 1 4));
     ]
    @ if indexed then [ (2, map2 (fun rd rs -> Idx_load (rd, rs)) reg src) ]
      else [])

let ops_gen ?extra_srcs ?indexed () =
  QCheck.Gen.(list_size (int_range 0 40) (op_gen ?extra_srcs ?indexed ()))

let item_to_string = function
  | Asm.Label l -> l ^ ":"
  | Asm.I i -> "  " ^ Instr.to_string i
  | Asm.Br_to (kind, rs1, rs2, l) ->
    let k =
      match kind with
      | Instr.Beq -> "beq" | Instr.Bne -> "bne" | Instr.Blt -> "blt"
      | Instr.Bge -> "bge" | Instr.Bltu -> "bltu" | Instr.Bgeu -> "bgeu"
    in
    Printf.sprintf "  %s x%d, x%d, %s" k rs1 rs2 l
  | Asm.Li (r, v) -> Printf.sprintf "  li x%d, %d" r v
  | Asm.La (r, l) -> Printf.sprintf "  la x%d, %s" r l
  | Asm.J l -> "  j " ^ l
  | Asm.Jal_to (r, l) -> Printf.sprintf "  jal x%d, %s" r l
  | Asm.Call l -> "  call " ^ l
  | Asm.Ret -> "  ret"
  | Asm.Nop -> "  nop"

let print_ops ops =
  String.concat "\n" (List.map item_to_string (materialize ops))

let arbitrary ?extra_srcs ?indexed () =
  QCheck.make ~print:print_ops ~shrink:QCheck.Shrink.list
    (ops_gen ?extra_srcs ?indexed ())
