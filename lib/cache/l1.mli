(** Coherent, non-blocking L1 cache timing model (data or instruction).

    Core-side: bounded request queue with [can_accept] backpressure;
    completions are delivered through the [complete] callback after the hit
    latency (hits) or when the coherence fill returns (misses).  Multiple
    outstanding misses are tracked in MSHRs; requests to a line with a
    miss already in flight merge into the existing MSHR when the pending
    grant suffices.

    Memory-side: an MSI child on a {!Mi6_coherence.Link} — upgrade requests
    out, downgrade responses out (including voluntary eviction notices for
    {e clean} lines, which the RiscyOO protocol requires and which makes L1
    flushes cost one eviction per line, cf. paper Section 7.1), parent
    messages in.

    Purge support: [begin_flush] / [flush_step] invalidate one line per
    cycle and scrub replacement state, modeling the per-cycle flush rates
    of Section 7.1. *)

type config = {
  sets : int;
  ways : int;
  mshrs : int;
  hit_latency : int;
  seed : int;  (** pseudo-random replacement seed (public) *)
  prefetch_next_line : bool;
      (** simple next-line prefetch on a demand miss (off by default);
          raises memory-level parallelism, used by the MISS-sensitivity
          ablation *)
}

(** 32 KB, 8-way, 64-byte lines, 8 MSHRs, as in Figure 4. *)
val default_config : config

type t

val create :
  ?trace:Trace.t -> config -> link:Link.t -> stats:Stats.t -> name:string -> t
val config : t -> config

(** [can_accept t] — the core may issue a request this cycle. *)
val can_accept : t -> bool

(** [request t ~line ~store ~id] enqueues an access to cache-line number
    [line].  Raises [Failure] when [can_accept] is false. *)
val request : t -> line:int -> store:bool -> id:int -> unit

(** [try_hit t ~line] — combinational read-hit check for pipelined
    consumers (the instruction fetch stage): on a hit it touches the
    replacement state, counts the access, and returns [true] with no
    latency; on a miss it returns [false] without side effects and the
    caller falls back to {!request}. *)
val try_hit : t -> line:int -> bool

(** [tick t ~now ~complete] advances one cycle; [complete] receives the
    ids of requests that finish this cycle. *)
val tick : t -> now:int -> complete:(int -> unit) -> unit

(** [in_flight t] is the number of occupied MSHRs plus queued requests. *)
val in_flight : t -> int

(** [probe t ~line] is the current MSI state of [line] (I if absent);
    observation for tests and attack agents. *)
val probe : t -> line:int -> Msi.t

(** Purge.  [begin_flush] requires [in_flight t = 0]. *)
val begin_flush : t -> unit

(** [is_flushing t] — a flush is in progress. *)
val is_flushing : t -> bool

(** [flush_step t] invalidates (up to) one line, sending the required
    eviction notice; returns [true] when the flush has finished (all lines
    invalid, replacement state scrubbed). *)
val flush_step : t -> bool

(** [valid_lines t] is the number of valid lines (tests). *)
val valid_lines : t -> int

(** [replacement_signature t] exposes the replacement-policy state hash
    (tests check purge restores the public value). *)
val replacement_signature : t -> int

(** Demand-miss latency distribution (request accepted to fill), in
    cycles.  Prefetch fills are excluded. *)
val miss_latency : t -> Histogram.t

(** Fold of input queue / MSHR / completion / flush-cursor state for the
    quiet-cycle detector (see {!Mi6_util.Statesig}); the data array and
    replacement metadata are excluded (they change only in cycles that
    also move the included state). *)
val structural_signature : t -> int

(** Detailed render of the same state, for the byte-compare oracle. *)
val dump_state : t -> Buffer.t -> unit

(** Value snapshot of {e all} behavior-relevant state — tag array,
    replacement metadata, MSHRs, queues, flush cursor, and the
    miss-latency histogram (everything {!structural_signature} excludes
    included).  The core-side link FIFOs are captured by the LLC's
    checkpoint, which owns the links array. *)
type checkpoint

val save : t -> checkpoint

(** [restore t ck] rewinds [t] in place to the saved state; re-running
    the same input replays byte-identically. *)
val restore : t -> checkpoint -> unit
