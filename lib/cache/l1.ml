type config = {
  sets : int;
  ways : int;
  mshrs : int;
  hit_latency : int;
  seed : int;
  prefetch_next_line : bool;
}

let default_config =
  { sets = 64; ways = 8; mshrs = 8; hit_latency = 2; seed = 0x11;
    prefetch_next_line = false }

type line_meta = { state : Msi.t }

type mshr = {
  m_line : int;
  m_to : Msi.t;
  m_way : int; (* reserved way for the fill *)
  m_set : int;
  m_born : int; (* alloc cycle, for the miss-latency histogram *)
  mutable m_waiters : int list; (* request ids, completion order *)
}

type pending = { p_line : int; p_store : bool; p_id : int }

type t = {
  cfg : config;
  array : line_meta Sram.t;
  repl : Replacement.t;
  link : Link.t;
  stats : Stats.t;
  trace : Trace.t;
  miss_lat : Histogram.t; (* demand-miss request-to-fill latency *)
  name : string;
  input : pending Fifo.t;
  mshrs : mshr option array;
  completions : (int * int) Queue.t; (* id, ready_at *)
  mutable flushing : bool;
  mutable flush_cursor : int; (* line index being flushed: set * ways + way *)
}

let create ?(trace = Trace.null) cfg ~link ~stats ~name =
  {
    cfg;
    array = Sram.create ~sets:cfg.sets ~ways:cfg.ways;
    repl = Replacement.pseudo_random ~ways:cfg.ways ~sets:cfg.sets ~seed:cfg.seed;
    link;
    stats;
    trace;
    miss_lat = Histogram.create ();
    name;
    input = Fifo.create ~capacity:4;
    mshrs = Array.make cfg.mshrs None;
    completions = Queue.create ();
    flushing = false;
    flush_cursor = 0;
  }

let config t = t.cfg
let can_accept t = Fifo.can_enq t.input && not t.flushing

let request t ~line ~store ~id =
  if not (can_accept t) then failwith "L1.request: not ready";
  Stats.incr t.stats (t.name ^ ".accesses");
  Fifo.enq t.input { p_line = line; p_store = store; p_id = id }

(* L1s always use the flat (low-bits) index; sets is a power of two. *)
let set_of t line = line land (t.cfg.sets - 1)

let free_mshr t =
  let rec go i =
    if i >= Array.length t.mshrs then None
    else match t.mshrs.(i) with None -> Some i | Some _ -> go (i + 1)
  in
  go 0

let find_mshr t line =
  let rec go i =
    if i >= Array.length t.mshrs then None
    else
      match t.mshrs.(i) with
      | Some m when m.m_line = line -> Some (i, m)
      | _ -> go (i + 1)
  in
  go 0

let in_flight t =
  Fifo.length t.input
  + Array.fold_left (fun n m -> n + match m with Some _ -> 1 | None -> 0) 0 t.mshrs
  + Queue.length t.completions

(* A way already reserved as the fill target of an in-flight miss must not
   be picked by another miss in the same set. *)
let way_reserved t set way =
  Array.exists
    (function
      | Some m -> m.m_set = set && m.m_way = way
      | None -> false)
    t.mshrs

let probe t ~line =
  let set = set_of t line in
  match Sram.find t.array ~set ~tag:line with
  | Some (_, m) -> m.state
  | None -> Msi.I

let try_hit t ~line =
  if t.flushing then false
  else begin
    let set = set_of t line in
    match Sram.find t.array ~set ~tag:line with
    | Some (way, _) ->
      Stats.incr t.stats (t.name ^ ".accesses");
      Stats.incr t.stats (t.name ^ ".hits");
      Replacement.touch t.repl ~set ~way;
      true
    | None -> false
  end

(* Handle one parent->child message if present.  Returns unit; leaves the
   message queued when output backpressure prevents progress. *)
let process_parent t ~now =
  match Fifo.peek_opt t.link.Link.p2c with
  | None -> ()
  | Some (Msg.Upgrade_resp { line; to_s }) -> (
    ignore (Fifo.deq t.link.Link.p2c);
    match find_mshr t line with
    | None ->
      (* Response without an MSHR: protocol violation. *)
      assert false
    | Some (idx, m) ->
      Sram.fill t.array ~set:m.m_set ~way:m.m_way ~tag:line { state = to_s };
      Replacement.touch t.repl ~set:m.m_set ~way:m.m_way;
      if m.m_waiters <> [] then Histogram.add t.miss_lat (now - m.m_born);
      if Trace.active t.trace Trace.L1 then
        Trace.emit t.trace ~now (Trace.Cache_fill { cache = t.name; line });
      List.iter
        (fun id -> Queue.add (id, now + t.cfg.hit_latency) t.completions)
        (List.rev m.m_waiters);
      t.mshrs.(idx) <- None)
  | Some (Msg.Downgrade_req { line; to_s }) ->
    if Fifo.can_enq t.link.Link.rs then begin
      ignore (Fifo.deq t.link.Link.p2c);
      let set = set_of t line in
      match Sram.find t.array ~set ~tag:line with
      | Some (way, m) when Msi.lt to_s m.state ->
        let dirty = m.state = Msi.M in
        if dirty then Stats.incr t.stats (t.name ^ ".writebacks");
        if to_s = Msi.I then Sram.invalidate t.array ~set ~way
        else Sram.update t.array ~set ~way { state = to_s };
        Fifo.enq t.link.Link.rs { Msg.line; to_s; dirty }
      | _ ->
        (* Already at or below the requested state (e.g. a voluntary
           eviction raced with this request): null response. *)
        Fifo.enq t.link.Link.rs { Msg.line; to_s; dirty = false }
    end

(* Next-line prefetch: a waiter-less miss for [line], issued only when it
   costs nothing that a demand access needs right now. *)
let try_prefetch t ~now line =
  let set = set_of t line in
  if
    Sram.find t.array ~set ~tag:line = None
    && find_mshr t line = None
    && Fifo.can_enq t.link.Link.rq
  then begin
    match free_mshr t with
    | None -> ()
    | Some idx -> (
      let rec find_way w =
        if w >= t.cfg.ways then None
        else if Sram.read t.array ~set ~way:w = None && not (way_reserved t set w)
        then Some w
        else find_way (w + 1)
      in
      (* Prefetches never evict: only fill truly free ways. *)
      match find_way 0 with
      | None -> ()
      | Some way ->
        Stats.incr t.stats (t.name ^ ".prefetches");
        t.mshrs.(idx) <-
          Some
            { m_line = line; m_to = Msi.S; m_way = way; m_set = set;
              m_born = now; m_waiters = [] };
        Fifo.enq t.link.Link.rq { Msg.line; from_s = Msi.I; to_s = Msi.S })
  end

(* Try to start the request at the head of the input queue. *)
let process_input t ~now =
  match Fifo.peek_opt t.input with
  | None -> ()
  | Some { p_line = line; p_store = store; p_id = id } -> (
    let set = set_of t line in
    let needed = Msi.needed_for ~store in
    match Sram.find t.array ~set ~tag:line with
    | Some (way, m) when Msi.leq needed m.state ->
      (* Hit. *)
      ignore (Fifo.deq t.input);
      Stats.incr t.stats (t.name ^ ".hits");
      Replacement.touch t.repl ~set ~way;
      Queue.add (id, now + t.cfg.hit_latency) t.completions
    | present -> (
      (* Miss or upgrade. *)
      match find_mshr t line with
      | Some (_, m) when Msi.leq needed m.m_to ->
        ignore (Fifo.deq t.input);
        Stats.incr t.stats (t.name ^ ".mshr_merges");
        m.m_waiters <- id :: m.m_waiters
      | Some _ ->
        (* In-flight grant too weak (load MSHR, store arrives): wait for
           it to complete, then re-request.  Head-of-line stall. *)
        ()
      | None -> (
        match free_mshr t with
        | None -> Stats.incr t.stats (t.name ^ ".mshr_full_stalls")
        | Some idx ->
          if Fifo.can_enq t.link.Link.rq then begin
            let from_s, way_opt =
              match present with
              | Some (way, m) -> (m.state, Some way) (* S->M upgrade in place *)
              | None -> (Msi.I, None)
            in
            let find_unreserved_invalid () =
              let rec go w =
                if w >= t.cfg.ways then None
                else if
                  Sram.read t.array ~set ~way:w = None
                  && not (way_reserved t set w)
                then Some w
                else go (w + 1)
              in
              go 0
            in
            let find_unreserved_victim () =
              (* Start from the policy's pick, scan to skip reserved
                 ways. *)
              let pick = Replacement.victim t.repl ~set ~invalid_way:None in
              let rec go tries w =
                if tries >= t.cfg.ways then None
                else if not (way_reserved t set w) then Some w
                else go (tries + 1) ((w + 1) mod t.cfg.ways)
              in
              go 0 pick
            in
            let way, ok =
              match way_opt with
              | Some w -> (w, true)
              | None -> (
                match find_unreserved_invalid () with
                | Some w -> (w, true)
                | None -> (
                  (* Replacement: victim must be evicted with a downgrade
                     response (clean or dirty). *)
                  match find_unreserved_victim () with
                  | None -> (0, false) (* all ways reserved: stall *)
                  | Some w ->
                    if Fifo.can_enq t.link.Link.rs then begin
                      (match Sram.read t.array ~set ~way:w with
                      | Some (vtag, vm) ->
                        let dirty = vm.state = Msi.M in
                        if dirty then
                          Stats.incr t.stats (t.name ^ ".writebacks");
                        Stats.incr t.stats (t.name ^ ".evictions");
                        Fifo.enq t.link.Link.rs
                          { Msg.line = vtag; to_s = Msi.I; dirty };
                        Sram.invalidate t.array ~set ~way:w
                      | None -> assert false);
                      (w, true)
                    end
                    else (0, false)))
            in
            if ok then begin
              ignore (Fifo.deq t.input);
              Stats.incr t.stats (t.name ^ ".misses");
              if Trace.active t.trace Trace.L1 then
                Trace.emit t.trace ~now
                  (Trace.Cache_miss { cache = t.name; line });
              t.mshrs.(idx) <-
                Some
                  {
                    m_line = line;
                    m_to = needed;
                    m_way = way;
                    m_set = set;
                    m_born = now;
                    m_waiters = [ id ];
                  };
              Fifo.enq t.link.Link.rq { Msg.line; from_s; to_s = needed };
              if t.cfg.prefetch_next_line then try_prefetch t ~now (line + 1)
            end
          end)))

let deliver_completions t ~now ~complete =
  let rec go () =
    match Queue.peek_opt t.completions with
    | Some (id, ready) when ready <= now ->
      ignore (Queue.pop t.completions);
      complete id;
      go ()
    | _ -> ()
  in
  go ()

let tick t ~now ~complete =
  process_parent t ~now;
  if not t.flushing then process_input t ~now;
  deliver_completions t ~now ~complete

let begin_flush t =
  if in_flight t > 0 then failwith "L1.begin_flush: requests in flight";
  t.flushing <- true;
  t.flush_cursor <- 0

let valid_lines t = Sram.count_valid t.array
let is_flushing t = t.flushing

let flush_step t =
  if not t.flushing then invalid_arg "L1.flush_step: not flushing";
  let total = t.cfg.sets * t.cfg.ways in
  (* Skip invalid slots without consuming cycles beyond this one step. *)
  let rec find_valid cursor =
    if cursor >= total then None
    else begin
      let set = cursor / t.cfg.ways and way = cursor mod t.cfg.ways in
      match Sram.read t.array ~set ~way with
      | Some (tag, m) -> Some (cursor, set, way, tag, m)
      | None -> find_valid (cursor + 1)
    end
  in
  match find_valid t.flush_cursor with
  | Some (cursor, set, way, tag, m) ->
    (* The coherence protocol requires notifying the LLC even for clean
       invalidations (Section 7.1), so each line costs one rs message. *)
    if Fifo.can_enq t.link.Link.rs then begin
      let dirty = m.state = Msi.M in
      if dirty then Stats.incr t.stats (t.name ^ ".writebacks");
      Fifo.enq t.link.Link.rs { Msg.line = tag; to_s = Msi.I; dirty };
      Sram.invalidate t.array ~set ~way;
      t.flush_cursor <- cursor + 1
    end;
    (* else: rs backpressured; retry this slot next cycle. *)
    false
  | None ->
    Replacement.scrub t.repl;
    t.flushing <- false;
    true

let replacement_signature t = Replacement.state_signature t.repl

let miss_latency t = t.miss_lat

(* ------------------------------------------------------------------ *)
(* Checkpoint/restore                                                  *)
(* ------------------------------------------------------------------ *)

(* Everything behavior-relevant, including what structural_signature
   excludes (tag array, replacement metadata).  MSHRs are copied by value
   because m_waiters is mutable.  The core-side link FIFOs are owned (and
   checkpointed) by the LLC, which holds the full links array. *)
type checkpoint = {
  ck_array : line_meta Sram.checkpoint;
  ck_repl : Replacement.checkpoint;
  ck_miss_lat : Histogram.t;
  ck_input : pending list;
  ck_mshrs : mshr option array;
  ck_completions : (int * int) list;
  ck_flushing : bool;
  ck_flush_cursor : int;
}

let copy_mshr m = { m with m_line = m.m_line }

let save t =
  {
    ck_array = Sram.save t.array;
    ck_repl = Replacement.save t.repl;
    ck_miss_lat = Histogram.copy t.miss_lat;
    ck_input = Fifo.to_list t.input;
    ck_mshrs = Array.map (Option.map copy_mshr) t.mshrs;
    ck_completions = List.of_seq (Queue.to_seq t.completions);
    ck_flushing = t.flushing;
    ck_flush_cursor = t.flush_cursor;
  }

let restore t ck =
  Sram.restore t.array ck.ck_array;
  Replacement.restore t.repl ck.ck_repl;
  Histogram.restore ~into:t.miss_lat ck.ck_miss_lat;
  Fifo.assign t.input ck.ck_input;
  Array.iteri (fun i m -> t.mshrs.(i) <- Option.map copy_mshr m) ck.ck_mshrs;
  Queue.clear t.completions;
  List.iter (fun c -> Queue.add c t.completions) ck.ck_completions;
  t.flushing <- ck.ck_flushing;
  t.flush_cursor <- ck.ck_flush_cursor

(* Structure state for the quiet-cycle detector: the input queue, MSHRs,
   pending completions, and the flush cursor.  The data array and
   replacement metadata are excluded — they only change in cycles that
   also move an MSHR, a queue, or the cursor. *)
let msi_code = function Msi.M -> 2 | Msi.S -> 1 | Msi.I -> 0

let structural_signature t =
  let h = ref Statesig.empty in
  let i v = h := Statesig.mix !h v in
  i (Fifo.length t.input);
  Fifo.iter
    (fun p ->
      i p.p_line;
      h := Statesig.mix_bool !h p.p_store;
      i p.p_id)
    t.input;
  Array.iter
    (function
      | None -> i (-1)
      | Some m ->
        i m.m_line;
        i (msi_code m.m_to);
        i m.m_way;
        i m.m_set;
        i m.m_born;
        h := Statesig.mix_list !h Fun.id m.m_waiters)
    t.mshrs;
  i (Queue.length t.completions);
  Queue.iter
    (fun (id, ready) ->
      i id;
      i ready)
    t.completions;
  h := Statesig.mix_bool !h t.flushing;
  i t.flush_cursor;
  !h

let dump_state t buf =
  Printf.bprintf buf "%s.in=%d[" t.name (Fifo.length t.input);
  Fifo.iter
    (fun p -> Printf.bprintf buf "(%d,%b,%d)" p.p_line p.p_store p.p_id)
    t.input;
  Buffer.add_string buf "] mshrs[";
  Array.iter
    (function
      | None -> Buffer.add_char buf '-'
      | Some m ->
        Printf.bprintf buf "(%d,%d,%d,%d,%d,w=" m.m_line (msi_code m.m_to)
          m.m_way m.m_set m.m_born;
        List.iter (fun id -> Printf.bprintf buf "%d;" id) m.m_waiters;
        Buffer.add_char buf ')')
    t.mshrs;
  Printf.bprintf buf "] comp=%d[" (Queue.length t.completions);
  Queue.iter (fun (id, ready) -> Printf.bprintf buf "(%d,%d)" id ready)
    t.completions;
  Printf.bprintf buf "] flush=%b@%d" t.flushing t.flush_cursor
