(** Replacement policies.

    The purge analysis in Section 6 of the paper distinguishes policies by
    how much program-dependent state they carry:
    - RiscyOO's caches use {e pseudo-random} replacement, which keeps no
      per-line state; purge only needs to reseed nothing (the LFSR-style
      stream is program-independent here because it advances per
      replacement {e decision}, which the purge resets).
    - TLBs use {e LRU}, whose per-set ordering is program-dependent and is
      "self-cleaning": invalidating all lines of a set makes fills follow a
      predefined order, scrubbing the replacement metadata. *)

type t

val pseudo_random : ways:int -> sets:int -> seed:int -> t
val lru : ways:int -> sets:int -> t

(** [victim t ~set ~invalid_way] picks the way to replace: an invalid way
    when one exists, otherwise by policy. *)
val victim : t -> set:int -> invalid_way:int option -> int

(** [touch t ~set ~way] records a use (LRU bookkeeping; no-op for random). *)
val touch : t -> set:int -> way:int -> unit

(** [scrub t] erases all program-dependent policy state: resets LRU orders
    to the fill order and reseeds the pseudo-random stream to its public
    initial value.  Called by purge. *)
val scrub : t -> unit

(** [state_signature t] is a hash of the internal policy state, used by
    tests to check that purge leaves the policy in a canonical public
    state. *)
val state_signature : t -> int

(** Value snapshot of the policy state (LFSR position or LRU stamps) —
    state {!state_signature} summarizes but machine signatures exclude;
    checkpoints must carry it so victim choices replay identically. *)
type checkpoint

val save : t -> checkpoint

(** [restore t ck] — raises [Invalid_argument] if [ck] came from a
    different policy. *)
val restore : t -> checkpoint -> unit
