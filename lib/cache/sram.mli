(** Generic set-associative tag/metadata array, shared by the L1s, the
    LLC, and the TLBs.  Data contents are not modeled (the timing model
    tracks state, not values); ['a] is the per-line metadata (MSI state,
    directory sharer sets, dirty bits, ...). *)

type 'a t

val create : sets:int -> ways:int -> 'a t
val sets : 'a t -> int
val ways : 'a t -> int

(** [find t ~set ~tag] is [Some (way, meta)] for a valid matching line. *)
val find : 'a t -> set:int -> tag:int -> (int * 'a) option

(** [read t ~set ~way] is [Some (tag, meta)] if the way is valid. *)
val read : 'a t -> set:int -> way:int -> (int * 'a) option

(** [fill t ~set ~way ~tag meta] installs a line (overwrites). *)
val fill : 'a t -> set:int -> way:int -> tag:int -> 'a -> unit

(** [update t ~set ~way meta] changes the metadata of a valid line; raises
    [Invalid_argument] if invalid. *)
val update : 'a t -> set:int -> way:int -> 'a -> unit

val invalidate : 'a t -> set:int -> way:int -> unit

(** [invalid_way t ~set] is the lowest invalid way, if any. *)
val invalid_way : 'a t -> set:int -> int option

val count_valid : 'a t -> int

(** [iter_valid f t] applies [f set way tag meta] to every valid line. *)
val iter_valid : (int -> int -> int -> 'a -> unit) -> 'a t -> unit

(** [invalidate_all t] clears every line (whole-structure flush). *)
val invalidate_all : 'a t -> unit

(** Value snapshot of tags, valid bits, and metadata. *)
type 'a checkpoint

(** [save ?copy t] captures the array.  Pass [copy] when ['a] is a
    mutable record so the snapshot owns its own metadata (defaults to
    identity, correct for immutable metadata). *)
val save : ?copy:('a -> 'a) -> 'a t -> 'a checkpoint

(** [restore ?copy t ck] overwrites [t] in place with [ck]; the same
    [copy] keeps the checkpoint reusable after the restored machine
    mutates its lines. *)
val restore : ?copy:('a -> 'a) -> 'a t -> 'a checkpoint -> unit
