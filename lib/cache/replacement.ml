type t =
  | Random of { seed : int; mutable state : int64; ways : int }
  | Lru of { stamps : int array array; mutable clock : int }

let pseudo_random ~ways ~sets ~seed =
  ignore sets;
  Random { seed; state = Int64.of_int seed; ways }

let lru ~ways ~sets = Lru { stamps = Array.make_matrix sets ways 0; clock = 0 }

let next_random r =
  (* xorshift64 step. *)
  let s = r in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  Int64.logxor s (Int64.shift_left s 17)

let victim t ~set ~invalid_way =
  match invalid_way with
  | Some w -> w
  | None -> (
    match t with
    | Random r ->
      r.state <- next_random r.state;
      Int64.to_int (Int64.unsigned_rem r.state (Int64.of_int r.ways))
    | Lru l ->
      let stamps = l.stamps.(set) in
      let best = ref 0 in
      for w = 1 to Array.length stamps - 1 do
        if stamps.(w) < stamps.(!best) then best := w
      done;
      !best)

let touch t ~set ~way =
  match t with
  | Random _ -> ()
  | Lru l ->
    l.clock <- l.clock + 1;
    l.stamps.(set).(way) <- l.clock

let scrub t =
  match t with
  | Random r -> r.state <- Int64.of_int r.seed
  | Lru l ->
    l.clock <- 0;
    Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) l.stamps

(* Checkpoint/restore of the program-dependent policy state — included in
   machine checkpoints precisely because structural_signature leaves it
   out: victim choice after a restore must replay identically. *)
type checkpoint =
  | Ck_random of int64
  | Ck_lru of { c_stamps : int array array; c_clock : int }

let save = function
  | Random r -> Ck_random r.state
  | Lru l -> Ck_lru { c_stamps = Array.map Array.copy l.stamps; c_clock = l.clock }

let restore t ck =
  match (t, ck) with
  | Random r, Ck_random s -> r.state <- s
  | Lru l, Ck_lru { c_stamps; c_clock } ->
    Array.iteri (fun i row -> Array.blit row 0 l.stamps.(i) 0 (Array.length row))
      c_stamps;
    l.clock <- c_clock
  | _ -> invalid_arg "Replacement.restore: checkpoint from a different policy"

let state_signature t =
  match t with
  | Random r -> Int64.to_int (Int64.logand r.state 0x3FFFFFFFFFFFFFFFL)
  | Lru l ->
    let h = ref l.clock in
    Array.iter
      (fun row -> Array.iter (fun s -> h := (!h * 31) + s) row)
      l.stamps;
    !h land max_int
