type 'a t = {
  nsets : int;
  nways : int;
  tags : int array array;
  valid : bool array array;
  meta : 'a option array array;
}

let create ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Sram.create";
  {
    nsets = sets;
    nways = ways;
    tags = Array.make_matrix sets ways 0;
    valid = Array.make_matrix sets ways false;
    meta = Array.make_matrix sets ways None;
  }

let sets t = t.nsets
let ways t = t.nways

let check t set way =
  if set < 0 || set >= t.nsets || way < 0 || way >= t.nways then
    invalid_arg "Sram: set/way out of range"

let find t ~set ~tag =
  let rec go w =
    if w >= t.nways then None
    else if t.valid.(set).(w) && t.tags.(set).(w) = tag then
      match t.meta.(set).(w) with
      | Some m -> Some (w, m)
      | None -> assert false
    else go (w + 1)
  in
  if set < 0 || set >= t.nsets then invalid_arg "Sram.find: set out of range";
  go 0

let read t ~set ~way =
  check t set way;
  if t.valid.(set).(way) then
    match t.meta.(set).(way) with
    | Some m -> Some (t.tags.(set).(way), m)
    | None -> assert false
  else None

let fill t ~set ~way ~tag m =
  check t set way;
  t.tags.(set).(way) <- tag;
  t.valid.(set).(way) <- true;
  t.meta.(set).(way) <- Some m

let update t ~set ~way m =
  check t set way;
  if not t.valid.(set).(way) then
    invalid_arg "Sram.update: way is invalid";
  t.meta.(set).(way) <- Some m

let invalidate t ~set ~way =
  check t set way;
  t.valid.(set).(way) <- false;
  t.meta.(set).(way) <- None

let invalid_way t ~set =
  let rec go w =
    if w >= t.nways then None
    else if not t.valid.(set).(w) then Some w
    else go (w + 1)
  in
  go 0

let count_valid t =
  let n = ref 0 in
  Array.iter (Array.iter (fun v -> if v then incr n)) t.valid;
  !n

let iter_valid f t =
  for set = 0 to t.nsets - 1 do
    for way = 0 to t.nways - 1 do
      if t.valid.(set).(way) then
        match t.meta.(set).(way) with
        | Some m -> f set way t.tags.(set).(way) m
        | None -> assert false
    done
  done

(* Checkpoint/restore: matrices are copied by value; [copy] deep-copies a
   metadata record so mutable meta (the LLC's line_meta) is captured by
   value on both the save and the restore path — a checkpoint stays valid
   however the live array (or a restored machine) mutates afterwards. *)
type 'a checkpoint = {
  c_tags : int array array;
  c_valid : bool array array;
  c_meta : 'a option array array;
}

let save ?(copy = fun m -> m) t =
  {
    c_tags = Array.map Array.copy t.tags;
    c_valid = Array.map Array.copy t.valid;
    c_meta = Array.map (Array.map (Option.map copy)) t.meta;
  }

let restore ?(copy = fun m -> m) t ck =
  for set = 0 to t.nsets - 1 do
    Array.blit ck.c_tags.(set) 0 t.tags.(set) 0 t.nways;
    Array.blit ck.c_valid.(set) 0 t.valid.(set) 0 t.nways;
    for way = 0 to t.nways - 1 do
      t.meta.(set).(way) <- Option.map copy ck.c_meta.(set).(way)
    done
  done

let invalidate_all t =
  for set = 0 to t.nsets - 1 do
    for way = 0 to t.nways - 1 do
      t.valid.(set).(way) <- false;
      t.meta.(set).(way) <- None
    done
  done
