type config = { sets : int; ways : int }

let l1_config = { sets = 1; ways = 32 }
let l2_config = { sets = 256; ways = 4 }

type t = {
  cfg : config;
  array : unit Sram.t;
  repl : Replacement.t;
}

let create cfg =
  {
    cfg;
    array = Sram.create ~sets:cfg.sets ~ways:cfg.ways;
    repl = Replacement.lru ~ways:cfg.ways ~sets:cfg.sets;
  }

let sets t = t.cfg.sets
let set_of t vpage = vpage land (t.cfg.sets - 1)

let lookup t ~vpage =
  let set = set_of t vpage in
  match Sram.find t.array ~set ~tag:vpage with
  | Some (way, ()) ->
    Replacement.touch t.repl ~set ~way;
    true
  | None -> false

let insert t ~vpage =
  let set = set_of t vpage in
  match Sram.find t.array ~set ~tag:vpage with
  | Some (way, ()) -> Replacement.touch t.repl ~set ~way
  | None ->
    let way =
      Replacement.victim t.repl ~set
        ~invalid_way:(Sram.invalid_way t.array ~set)
    in
    Sram.fill t.array ~set ~way ~tag:vpage ();
    Replacement.touch t.repl ~set ~way

(* Self-cleaning LRU (Section 6): invalidating a set resets its
   replacement metadata, so a full flush leaves the public fresh state. *)
let flush_set t ~set =
  for way = 0 to t.cfg.ways - 1 do
    Sram.invalidate t.array ~set ~way
  done

let flush_all t =
  for set = 0 to t.cfg.sets - 1 do
    flush_set t ~set
  done;
  Replacement.scrub t.repl

let occupancy t = Sram.count_valid t.array

(* Checkpoint/restore: tag array plus LRU stamps — predictor-class state
   that machine signatures exclude but replay determinism needs. *)
type checkpoint = {
  ck_array : unit Sram.checkpoint;
  ck_repl : Replacement.checkpoint;
}

let save t = { ck_array = Sram.save t.array; ck_repl = Replacement.save t.repl }

let restore t ck =
  Sram.restore t.array ck.ck_array;
  Replacement.restore t.repl ck.ck_repl

let lru_signature t =
  if occupancy t = 0 then 0 else Replacement.state_signature t.repl
