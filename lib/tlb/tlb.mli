(** TLB timing structure: set-associative (or fully associative with
    [sets = 1]) with LRU replacement, tracking which virtual pages have
    cached translations.  Timing-only — the functional simulator holds the
    actual translations.

    Purge (paper Sections 6 and 7.1): L1 TLBs are fully associative and
    flush in one cycle; the L2 TLB discards one set per cycle
    ([flush_set]).  RiscyOO's LRU is {e self-cleaning}: once all lines of a
    set are invalid, fills proceed in a predefined order, so invalidation
    alone scrubs the replacement metadata — [lru_signature] lets tests
    verify that. *)

type config = { sets : int; ways : int }

(** Figure 4: 32-entry fully associative L1 TLBs. *)
val l1_config : config

(** Figure 4: 1024-entry 4-way L2 TLB. *)
val l2_config : config

type t

val create : config -> t
val sets : t -> int

(** [lookup t ~vpage] — hit (touches LRU) or miss. *)
val lookup : t -> vpage:int -> bool

(** [insert t ~vpage] fills the translation, evicting LRU if needed. *)
val insert : t -> vpage:int -> unit

(** [flush_all t] invalidates everything at once (L1 TLBs). *)
val flush_all : t -> unit

(** [flush_set t ~set] invalidates one set (L2 TLB: one set per cycle). *)
val flush_set : t -> set:int -> unit

val occupancy : t -> int

(** [lru_signature t] hashes the replacement metadata of {e invalid} state:
    after a full flush the signature equals that of a fresh TLB. *)
val lru_signature : t -> int

(** Value snapshot of the tag array {e and} the LRU stamps — predictor-class
    state that signatures exclude but replay determinism needs. *)
type checkpoint

val save : t -> checkpoint
val restore : t -> checkpoint -> unit
