let id_tag = 1 lsl 40

type walk = {
  vpage : int;
  started_at : int;
  mutable levels_left : int list; (* levels still to read, root first *)
  mutable waiting_mem : bool;
  mutable reads : int;
  on_done : reads:int -> unit;
}

type t = {
  max_walks : int;
  tcache : Trans_cache.t;
  pt_base_line : int;
  window : int;
  slots : walk option array;
  trace : Trace.t;
  core : int; (* owning core, for trace attribution *)
  walk_lat : Histogram.t; (* walk start-to-finish latency *)
}

let create ?(trace = Trace.null) ?(core = 0) ~max_walks ~tcache ~pt_base_line
    ~table_window_lines () =
  {
    max_walks;
    tcache;
    pt_base_line;
    window = table_window_lines;
    slots = Array.make max_walks None;
    trace;
    core;
    walk_lat = Histogram.create ();
  }

let walk_latency t = t.walk_lat

let active_walks t =
  Array.fold_left (fun n s -> n + match s with Some _ -> 1 | None -> 0) 0 t.slots

let can_start t = active_walks t < t.max_walks

(* Sv39 structure: level 2 = root (vpn[26:18]), level 1 = mid
   (vpn[26:9]), level 0 = leaf (full vpn).  Each PTE is 8 bytes. *)
let prefix ~level ~vpage =
  match level with
  | 2 -> vpage lsr 18
  | 1 -> vpage lsr 9
  | 0 -> vpage
  | _ -> invalid_arg "Ptw: bad level"

let pte_line t ~level ~vpage =
  let p = prefix ~level ~vpage in
  (* 8 PTEs per 64-byte line. *)
  t.pt_base_line + ((2 - level) * t.window) + (p / 8 mod t.window)

let start ?(now = 0) t ~vpage ~on_done =
  if not (can_start t) then failwith "Ptw.start: no free walk slot";
  if Trace.active t.trace Trace.Ptw then
    Trace.emit t.trace ~now (Trace.Walk_start { core = t.core; vpage });
  (* Translation cache: skipping levels whose prefix is cached. *)
  let levels_left =
    if Trans_cache.lookup t.tcache ~level:1 ~prefix:(prefix ~level:1 ~vpage)
    then [ 0 ]
    else if
      Trans_cache.lookup t.tcache ~level:0 ~prefix:(prefix ~level:2 ~vpage)
      (* tcache level 0 stores root-level (walk level 2) prefixes *)
    then [ 1; 0 ]
    else [ 2; 1; 0 ]
  in
  let rec find i =
    if i >= t.max_walks then assert false
    else if t.slots.(i) = None then i
    else find (i + 1)
  in
  let slot = find 0 in
  t.slots.(slot) <-
    Some
      { vpage; started_at = now; levels_left; waiting_mem = false; reads = 0;
        on_done }

let tick t ~issue =
  (* Issue at most one PTE read per cycle, lowest slot first. *)
  let issued = ref false in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some w when (not !issued) && (not w.waiting_mem) && w.levels_left <> []
        -> (
        match w.levels_left with
        | level :: _ ->
          let line = pte_line t ~level ~vpage:w.vpage in
          if issue ~line ~id:(id_tag lor i) then begin
            w.waiting_mem <- true;
            issued := true
          end
        | [] -> ())
      | _ -> ())
    t.slots

let mem_response ?(now = 0) t ~id =
  let slot = id land lnot id_tag in
  match t.slots.(slot) with
  | None -> failwith "Ptw.mem_response: no walk in slot"
  | Some w -> (
    if not w.waiting_mem then failwith "Ptw.mem_response: not waiting";
    w.waiting_mem <- false;
    w.reads <- w.reads + 1;
    match w.levels_left with
    | [] -> assert false
    | _ :: rest ->
      w.levels_left <- rest;
      if rest = [] then begin
        (* Walk complete: populate the translation cache. *)
        Trans_cache.insert t.tcache ~level:0
          ~prefix:(prefix ~level:2 ~vpage:w.vpage);
        Trans_cache.insert t.tcache ~level:1
          ~prefix:(prefix ~level:1 ~vpage:w.vpage);
        Histogram.add t.walk_lat (now - w.started_at);
        if Trace.active t.trace Trace.Ptw then
          Trace.emit t.trace ~now
            (Trace.Walk_end { core = t.core; vpage = w.vpage; reads = w.reads });
        t.slots.(slot) <- None;
        w.on_done ~reads:w.reads
      end)

(* Checkpoint/restore.  A walk record carries an [on_done] closure that
   captures the owning core's heap state, so slots cannot be rebuilt from
   values: the checkpoint keeps the {e original} walk records and copies of
   their mutable fields, and [restore] writes those fields back in place.
   Only valid on the same [t] the checkpoint came from.  The translation
   cache is shared (passed in at [create]) and checkpointed by its owner. *)
type slot_ck = {
  sk_walk : walk;
  sk_levels_left : int list;
  sk_waiting_mem : bool;
  sk_reads : int;
}

type checkpoint = {
  ck_slots : slot_ck option array;
  ck_walk_lat : Histogram.t;
}

let save t =
  {
    ck_slots =
      Array.map
        (Option.map (fun w ->
             {
               sk_walk = w;
               sk_levels_left = w.levels_left;
               sk_waiting_mem = w.waiting_mem;
               sk_reads = w.reads;
             }))
        t.slots;
    ck_walk_lat = Histogram.copy t.walk_lat;
  }

let restore t ck =
  Array.iteri
    (fun i s ->
      t.slots.(i) <-
        Option.map
          (fun sk ->
            let w = sk.sk_walk in
            w.levels_left <- sk.sk_levels_left;
            w.waiting_mem <- sk.sk_waiting_mem;
            w.reads <- sk.sk_reads;
            w)
          s)
    ck.ck_slots;
  Histogram.restore ~into:t.walk_lat ck.ck_walk_lat

(* Structure state (quiet-cycle detector): the walk slots.  The
   translation cache and latency histogram are excluded — they only
   change when a walk also completes. *)
let structural_signature t =
  let h = ref Statesig.empty in
  Array.iter
    (function
      | None -> h := Statesig.mix !h (-1)
      | Some w ->
        h := Statesig.mix !h w.vpage;
        h := Statesig.mix !h w.started_at;
        h := Statesig.mix_list !h Fun.id w.levels_left;
        h := Statesig.mix_bool !h w.waiting_mem;
        h := Statesig.mix !h w.reads)
    t.slots;
  !h

let dump_state t buf =
  Buffer.add_string buf "ptw[";
  Array.iter
    (function
      | None -> Buffer.add_char buf '-'
      | Some w ->
        Printf.bprintf buf "(v=%d s=%d ll=[" w.vpage w.started_at;
        List.iter (fun l -> Printf.bprintf buf "%d;" l) w.levels_left;
        Printf.bprintf buf "] wm=%b r=%d)" w.waiting_mem w.reads)
    t.slots;
  Buffer.add_char buf ']'
