(** Translation cache: fully associative cache of intermediate page-walk
    steps (Figure 4: 24 entries per intermediate translation step), letting
    the walker skip upper page-table levels. *)

type t

(** [create ~entries_per_level ~levels] — RiscyOO: 24 entries, 2
    intermediate levels (root and mid). *)
val create : entries_per_level:int -> levels:int -> t

(** [lookup t ~level ~prefix] — can the walker skip to [level]?  Touches
    LRU on hit. *)
val lookup : t -> level:int -> prefix:int -> bool

val insert : t -> level:int -> prefix:int -> unit

(** [flush t] — purge support; one cycle (small FA structure). *)
val flush : t -> unit

val occupancy : t -> int

(** Value snapshot of every level (tags and LRU stamps). *)
type checkpoint

val save : t -> checkpoint
val restore : t -> checkpoint -> unit
