type t = { levels : Tlb.t array }

let create ~entries_per_level ~levels =
  {
    levels =
      Array.init levels (fun _ ->
          Tlb.create { Tlb.sets = 1; ways = entries_per_level });
  }

let check t level =
  if level < 0 || level >= Array.length t.levels then
    invalid_arg "Trans_cache: level out of range"

let lookup t ~level ~prefix =
  check t level;
  Tlb.lookup t.levels.(level) ~vpage:prefix

let insert t ~level ~prefix =
  check t level;
  Tlb.insert t.levels.(level) ~vpage:prefix

let flush t = Array.iter Tlb.flush_all t.levels

let occupancy t =
  Array.fold_left (fun n l -> n + Tlb.occupancy l) 0 t.levels

type checkpoint = Tlb.checkpoint array

let save t = Array.map Tlb.save t.levels
let restore t ck = Array.iteri (fun i c -> Tlb.restore t.levels.(i) c) ck
