(** Page-table-walker timing engine.

    A walk for a virtual page reads up to three page-table entries through
    the data-cache port; the translation cache short-circuits the upper
    levels.  PTE addresses are a deterministic function of the virtual page
    number over a page-table window in physical memory, so nearby pages
    share PTE cache lines — the locality that makes the L2 TLB and
    translation cache earn their keep.

    The walker issues at most one memory request per cycle through the
    [issue] callback (which may refuse; the walker retries).  The owner
    reports completions with {!mem_response}.  Finished walks invoke their
    continuation with the number of memory reads performed. *)

type t

(** [create ~max_walks ~tcache ~pt_base_line ~table_window_lines] — the
    level-[l] PTE for a page lives within a window of
    [table_window_lines] cache lines starting at
    [pt_base_line + l * table_window_lines]. *)
val create :
  ?trace:Trace.t ->
  ?core:int ->
  max_walks:int ->
  tcache:Trans_cache.t ->
  pt_base_line:int ->
  table_window_lines:int ->
  unit ->
  t

val can_start : t -> bool
val active_walks : t -> int

(** [start ?now t ~vpage ~on_done] begins a walk; [on_done ~reads] fires
    when it finishes.  [now] stamps the walk for the latency histogram and
    trace (observability only; default 0).  Raises if [can_start] is
    false. *)
val start : ?now:int -> t -> vpage:int -> on_done:(reads:int -> unit) -> unit

(** [tick t ~issue] gives the walker one cycle; it calls
    [issue ~line ~id] at most once ([issue] returns acceptance). *)
val tick : t -> issue:(line:int -> id:int -> bool) -> unit

(** [mem_response ?now t ~id] — a PTE read completed. *)
val mem_response : ?now:int -> t -> id:int -> unit

(** Walk start-to-finish latency distribution, in cycles. *)
val walk_latency : t -> Histogram.t

(** [pte_line t ~level ~vpage] — exposed for tests: the cache line the
    walker reads at [level] for [vpage]. *)
val pte_line : t -> level:int -> vpage:int -> int

(** Ids issued by the walker are tagged with this bit to avoid colliding
    with core load/store ids. *)
val id_tag : int

(** [structural_signature t] folds the walker's in-flight walk slots into
    a {!Statesig} hash (quiet-cycle detector); the translation cache and
    latency histogram are excluded since they only change when a walk
    also progresses. *)
val structural_signature : t -> int

(** [dump_state t buf] appends a labelled rendering of the same state
    [structural_signature] folds (the quiet-cycle oracle). *)
val dump_state : t -> Buffer.t -> unit

(** Snapshot of the in-flight walk slots and the latency histogram.  Walk
    continuations capture the owning core, so [restore] rewinds the walk
    records {e in place} — it is only valid on the same [t] that [save]
    produced the checkpoint from.  The translation cache is shared state
    checkpointed by its owner. *)
type checkpoint

val save : t -> checkpoint
val restore : t -> checkpoint -> unit
