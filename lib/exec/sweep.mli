(** Domain-parallel sweeps over the (variant × bench × seed) grid with a
    deterministic fan-in.

    A sweep enumerates its cells in canonical order (bench name, then
    variant name, then seed), fans them out over a {!Pool} — each cell
    runs a fully isolated simulator instance with its own [Stats] /
    [Metrics] / stream state — and reduces the per-cell registries by
    folding {!Mi6_obs.Metrics.merge} in that same canonical order.  The
    result (and so {!to_json}) is byte-identical no matter how many
    domains ran the cells, which is what the serial-vs-parallel CI gate
    checks. *)

module Config = Mi6_core.Config
module Spec = Mi6_workload.Spec

type cell = { variant : Config.variant; bench : Spec.bench; seed : int }

type outcome = { cell : cell; result : Mi6_core.Tmachine.result }

(** [cells ~variants ~benches ~seeds] is the full grid in canonical
    order: benches by {!Spec.name}, variants by {!Config.variant_name},
    seeds [0 .. seeds-1], seed fastest.  Duplicates in the inputs are
    dropped.  [seeds] defaults to 1 (the canonical stream only). *)
val cells :
  ?seeds:int -> variants:Config.variant list -> benches:Spec.bench list ->
  unit -> cell list

(** ["bench/variant"] or ["bench/variant#seed"] for nonzero seeds. *)
val cell_name : cell -> string

(** [run pool ~warmup ~measure cells] runs every cell (in parallel when
    the pool has more than one domain) and returns outcomes in the given
    cell order.

    [telemetry] (a base path) streams one deterministic-mode
    {!Mi6_obs.Telemetry} JSONL file per cell to
    [base ^ "#" ^ cell_name] (with ['/'] flattened to ['_']), a snapshot
    every [telemetry_every] cycles (default 10000).  Deterministic mode
    omits host-derived fields, so the file set is byte-identical for
    every pool size. *)
val run :
  Pool.t ->
  ?telemetry:string ->
  ?telemetry_every:int ->
  warmup:int ->
  measure:int ->
  cell list ->
  outcome list

(** The per-cell telemetry file path [run] derives from [base]. *)
val telemetry_path : base:string -> cell -> string

(** Fold every outcome's registry into a fresh accumulator registry, in
    list order.  Counter sums commute, so any permutation of the same
    outcomes exports identically. *)
val merged_metrics : outcome list -> Mi6_obs.Metrics.t

(** Full sweep snapshot: sweep parameters, one compact row per cell
    (bench / variant / seed / cycles / instrs / ipc / llc_mpki), and the
    merged registry.  Deliberately excludes wall-clock time and job
    count, so serial and parallel runs serialize to the same bytes. *)
val to_json : warmup:int -> measure:int -> outcome list -> Mi6_obs.Json.t

(** One {!Mi6_obs.Perfdb} record per outcome (bench names gain a
    ["#seed"] suffix for nonzero seeds), for the cross-run history. *)
val to_perfdb_records :
  run_id:string -> commit:string -> outcome list -> Mi6_obs.Perfdb.record list
