(* Fixed-size domain pool.

   Jobs are integer ranges handed out through an atomic cursor; each worker
   (and the calling domain) repeatedly claims the next unclaimed shard index
   and runs the job function on it.  Workers park on a condition variable
   between jobs, keyed by a generation counter so a worker that drained job
   [g] cannot re-enter the same (exhausted) job while the caller is still
   collecting it. *)

type job = {
  fn : int -> unit;  (* run shard [i]; result capture is the caller's *)
  cursor : int Atomic.t;  (* next shard index to claim *)
  total : int;
  pending : int Atomic.t;  (* shards claimed-or-unclaimed but not finished *)
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
  gen : int;
}

type t = {
  size : int;  (* domains participating in a job, including the caller *)
  mutex : Mutex.t;
  have_work : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable gen : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.size

(* Record the failure of shard [i]; the lowest shard index wins so the
   caller re-raises deterministically regardless of interleaving. *)
let record_failure t j i exn bt =
  Mutex.lock t.mutex;
  (match j.failed with
  | Some (i0, _, _) when i0 <= i -> ()
  | _ -> j.failed <- Some (i, exn, bt));
  Mutex.unlock t.mutex

let drain t j =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add j.cursor 1 in
    if i >= j.total then continue := false
    else begin
      (try j.fn i
       with exn ->
         record_failure t j i exn (Printexc.get_raw_backtrace ()));
      if Atomic.fetch_and_add j.pending (-1) = 1 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end
    end
  done

let worker_loop t () =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while
      (not t.stop)
      && (match t.job with None -> true | Some j -> j.gen <= !last_gen)
    do
      Condition.wait t.have_work t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      let j = Option.get t.job in
      last_gen := j.gen;
      Mutex.unlock t.mutex;
      drain t j
    end
  done

let create ~domains =
  let size = max domains 1 in
  let t =
    {
      size;
      mutex = Mutex.create ();
      have_work = Condition.create ();
      work_done = Condition.create ();
      job = None;
      gen = 0;
      stop = false;
      workers = [];
    }
  in
  if size > 1 then
    t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let map_serial n f =
  (* No [Domain.spawn], no pool machinery: the [dune runtest] fallback. *)
  Array.init n f

let map t n f =
  if n = 0 then [||]
  else if t.size <= 1 || n = 1 then map_serial n f
  else begin
    let results = Array.make n None in
    let fn i = results.(i) <- Some (f i) in
    Mutex.lock t.mutex;
    t.gen <- t.gen + 1;
    let j =
      {
        fn;
        cursor = Atomic.make 0;
        total = n;
        pending = Atomic.make n;
        failed = None;
        gen = t.gen;
      }
    in
    t.job <- Some j;
    Condition.broadcast t.have_work;
    Mutex.unlock t.mutex;
    drain t j;
    Mutex.lock t.mutex;
    while Atomic.get j.pending > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.job <- None;
    let failed = j.failed in
    Mutex.unlock t.mutex;
    match failed with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> Array.map Option.get results
  end

let run_list t xs f =
  let arr = Array.of_list xs in
  Array.to_list (map t (Array.length arr) (fun i -> f arr.(i)))

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.have_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []
