module Config = Mi6_core.Config
module Spec = Mi6_workload.Spec
module Tmachine = Mi6_core.Tmachine
open Mi6_obs

type cell = { variant : Config.variant; bench : Spec.bench; seed : int }
type outcome = { cell : cell; result : Tmachine.result }

let cells ?(seeds = 1) ~variants ~benches () =
  if seeds < 1 then invalid_arg "Sweep.cells: seeds must be >= 1";
  let benches =
    List.sort_uniq (fun a b -> compare (Spec.name a) (Spec.name b)) benches
  in
  let variants =
    List.sort_uniq
      (fun a b -> compare (Config.variant_name a) (Config.variant_name b))
      variants
  in
  List.concat_map
    (fun bench ->
      List.concat_map
        (fun variant ->
          List.init seeds (fun seed -> { variant; bench; seed }))
        variants)
    benches

let cell_name c =
  let base = Spec.name c.bench ^ "/" ^ Config.variant_name c.variant in
  if c.seed = 0 then base else Printf.sprintf "%s#%d" base c.seed

(* Telemetry file suffix for one cell: the cell name with '/' (a path
   separator) flattened, appended after '#'.  Deterministic, so serial
   and parallel sweeps of the same grid produce the same file set. *)
let telemetry_path ~base cell =
  let name =
    String.map (fun c -> if c = '/' then '_' else c) (cell_name cell)
  in
  base ^ "#" ^ name

let run pool ?telemetry ?(telemetry_every = 10_000) ~warmup ~measure cells =
  Pool.run_list pool cells (fun cell ->
      (* Everything a cell touches — stream generator, stats, metrics,
         caches, cores — is allocated inside this call; nothing mutable is
         shared with other cells. *)
      let tel =
        match telemetry with
        | None -> Telemetry.null
        | Some base ->
          (* Deterministic mode: no host-derived fields, so each cell's
             stream is byte-identical for every --jobs. *)
          Telemetry.create ~deterministic:true ~every:telemetry_every
            ~path:(telemetry_path ~base cell)
            ()
      in
      let result =
        Fun.protect
          ~finally:(fun () -> Telemetry.close tel)
          (fun () ->
            Tmachine.run_spec ~telemetry:tel ~seed:cell.seed
              ~variant:cell.variant ~bench:cell.bench ~warmup ~measure ())
      in
      { cell; result })

let merged_metrics outcomes =
  let acc = Metrics.create () in
  List.iter
    (fun o -> Metrics.merge ~into:acc o.result.Tmachine.metrics)
    outcomes;
  acc

let cell_row o =
  let r = o.result in
  Json.Obj
    [
      ("bench", Json.String (Spec.name o.cell.bench));
      ("variant", Json.String (Config.variant_name o.cell.variant));
      ("seed", Json.Int o.cell.seed);
      ("cycles", Json.Int r.Tmachine.cycles);
      ("instrs", Json.Int r.Tmachine.instrs);
      ("ipc", Json.Float (Tmachine.ipc r));
      ("llc_mpki", Json.Float (Tmachine.mpki r "llc.misses"));
    ]

let to_json ~warmup ~measure outcomes =
  Json.Obj
    [
      ( "sweep",
        Json.Obj
          [
            ("warmup", Json.Int warmup);
            ("measure", Json.Int measure);
            ("cells", Json.Int (List.length outcomes));
          ] );
      ("cells", Json.List (List.map cell_row outcomes));
      ("merged", Metrics.to_json (merged_metrics outcomes));
    ]

let to_perfdb_records ~run_id ~commit outcomes =
  List.map
    (fun o ->
      let r = o.result in
      let cpi =
        List.filter_map
          (fun cat ->
            match
              Mi6_util.Stats.get r.Tmachine.stats (Cpistack.counter_name cat)
            with
            | 0 -> None
            | c -> Some (cat, c))
          Cpistack.categories
      in
      let quantiles =
        List.filter_map
          (fun (name, h) ->
            if Histogram.count h = 0 then None
            else
              Some (name, (Histogram.p50 h, Histogram.p95 h, Histogram.p99 h)))
          (Metrics.histograms r.Tmachine.metrics)
      in
      let bench =
        if o.cell.seed = 0 then Spec.name o.cell.bench
        else Printf.sprintf "%s#%d" (Spec.name o.cell.bench) o.cell.seed
      in
      {
        Perfdb.run_id;
        commit;
        variant = Config.variant_name o.cell.variant;
        bench;
        cycles = r.Tmachine.cycles;
        instrs = r.Tmachine.instrs;
        ipc = Tmachine.ipc r;
        cpi;
        quantiles;
        (* No host section: per-cell wall time depends on --jobs and
           host load, and sweep outputs must stay machine-independent. *)
        host = None;
      })
    outcomes
