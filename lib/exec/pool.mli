(** Fixed-size domain pool with deterministic fan-in.

    A pool owns [domains - 1] worker domains (the caller participates as the
    final worker while a job is in flight), created once and reused across
    jobs, so repeated sweeps pay the domain-spawn cost only once.  Work is
    handed out as integer shard indices [0 .. n-1] drawn from a shared atomic
    cursor; results land in a caller-side array slot per index, so the output
    order is the input order no matter which domain ran which shard.

    With [domains <= 1] the pool spawns nothing and [map] degrades to a plain
    serial loop on the calling domain — this is the reproducibility fallback
    used by [dune runtest], where no [Domain.spawn] must happen.

    The functions passed to [map] must not share mutable state across shards
    unless that state is itself domain-safe; the simulator jobs built on top
    of this pool allocate all of their state per shard. *)

type t

val create : domains:int -> t
(** [create ~domains] makes a pool that runs jobs on [max domains 1]
    domains in total (including the caller). *)

val domains : t -> int
(** Number of domains that participate in a job, including the caller. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] computes [[| f 0; ...; f (n-1) |]].  Shards run concurrently
    on the pool's domains; the result array is always in index order.  If any
    shard raises, [map] re-raises the first exception recorded (by shard
    index) after all in-flight shards have drained. *)

val run_list : t -> 'a list -> ('a -> 'b) -> 'b list
(** [run_list t xs f] is [map] over a list, preserving order. *)

val shutdown : t -> unit
(** Join all worker domains.  The pool must not be used afterwards.
    Idempotent. *)
