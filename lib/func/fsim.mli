(** Functional (architectural) simulator for one hart.

    Executes real encoded instructions out of {!Mi6_mem.Phys_mem}, with
    Sv39 translation, privilege modes, traps, and the MI6 hardware checks:

    - {b DRAM-region validation} (paper Section 5.3): when running below
      machine mode, {e every} physical access — instruction fetch, load,
      store, and each page-table-walk step — must hit a region whose bit is
      set in the [mregions] CSR; a violating access raises
      {!Priv.Region_fault} and, crucially, the access is {e never emitted}
      to the memory system (the returned access list omits it).
    - {b Machine-mode fetch restriction} (Section 6.1): when
      [mfetchmask] is nonzero, machine-mode fetches must satisfy
      [pa land mfetchmask = mfetchbase], confining the security monitor's
      instruction stream to its own footprint.
    - {b purge} (Section 6): machine-mode only; architecturally a no-op
      that signals the microarchitectural flush through {!set_on_purge}.

    A {e firmware handler} models the security monitor: traps that target
    machine mode are offered to the handler first, which mutates state
    (implementing SM calls) and reports whether it handled the trap.  This
    is the documented substitution for running monitor machine code. *)

type access_kind = Fetch | Load | Store | Walk

type access = {
  kind : access_kind;
  vaddr : int64 option;  (** None for walk steps and bare accesses *)
  paddr : int;
  width : int;
}

type trap_info = { cause : Priv.cause; tval : int64; target : Priv.mode }

type step_result = {
  pc : int64;  (** pc of the instruction attempted this step *)
  executed : Instr.t option;  (** None when the fetch itself faulted *)
  accesses : access list;  (** emitted physical accesses, program order *)
  trap : trap_info option;
  purged : bool;
}

type t

type firmware = t -> cause:Priv.cause -> tval:int64 -> epc:int64 -> bool

val create : ?regions:Addr.regions -> mem:Phys_mem.t -> hartid:int -> unit -> t
val mem : t -> Phys_mem.t
val state : t -> Cpu_state.t
val regions : t -> Addr.regions

(** [set_firmware t fw] installs the machine-mode trap handler model. *)
val set_firmware : t -> firmware -> unit

(** [set_on_purge t f] observes executed purges (the machine model uses
    this to scrub the core's timing-model state). *)
val set_on_purge : t -> (unit -> unit) -> unit

(** Machine timer interrupt pending bit (MIP.MTIP). *)
val raise_timer_interrupt : t -> unit

val clear_timer_interrupt : t -> unit

(** [step t] executes one instruction (or takes one pending trap). *)
val step : t -> step_result

(** [run t ~max_steps ~until] steps until [until t] holds or the budget is
    exhausted; returns the number of steps taken. *)
val run : t -> max_steps:int -> until:(t -> bool) -> int

(** [load_program t p] copies the encoded words into physical memory at
    [p.base]. *)
val load_program : t -> Asm.program -> unit

(** Exact RV64 operation semantics, exposed so static analyses
    ({!Mi6_analysis.Taint}'s constant folder) share one definition with the
    reference model instead of re-deriving it. *)

val alu_compute : Instr.alu_op -> int64 -> int64 -> int64
val alu_w_compute : Instr.alu_w_op -> int64 -> int64 -> int64
val branch_taken : Instr.branch_kind -> int64 -> int64 -> bool
