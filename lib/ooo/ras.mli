(** Return address stack: 8 entries (Figure 4), circular, no
    under/overflow checks (mispredicts on wrap, like hardware). *)

type t

val create : ?entries:int -> unit -> t
val push : t -> int -> unit

(** [pop t] is the predicted return address (0 when empty-ish). *)
val pop : t -> int

val flush : t -> unit
val depth : t -> int

(** Value snapshot of the stack contents and pointers. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
