(** Micro-ops consumed by the out-of-order core timing model.

    The trace carries the {e committed} path: branch µops know their real
    outcome, loads and stores carry their addresses.  Register identifiers
    are logical (0..31); the core renames them.  [Enter_kernel] /
    [Exit_kernel] mark trap boundaries (syscalls, timer interrupts): the
    core serializes there and, in the FLUSH/MI6 variants, purges per-core
    microarchitectural state (paper Section 7.1 flushes on both trap entry
    and trap return). *)

type pipe_class = Pipe_alu | Pipe_mem | Pipe_fp

type kind =
  | Alu of { latency : int; pipe : pipe_class }
  | Load of { addr : int }  (** byte address *)
  | Store of { addr : int }
  | Branch of { taken : bool; target : int }
  | Jump of { target : int; kind : [ `Plain | `Call | `Return ] }
  | Enter_kernel
  | Exit_kernel

type t = {
  pc : int;
  kind : kind;
  dst : int option;  (** logical destination register *)
  srcs : int list;  (** logical source registers *)
}

val is_mem : t -> bool
val is_control : t -> bool

(** [next_pc u] is the address of the next committed instruction. *)
val next_pc : t -> int

(** One-line human rendering ("0x…: kind dst=… srcs=[…]") used by the
    differential tester and causal-slice reports. *)
val to_string : t -> string

(** Convenience constructors used by workload generators and tests. *)

val alu : ?latency:int -> ?pipe:pipe_class -> pc:int -> dst:int -> srcs:int list -> unit -> t
val load : pc:int -> addr:int -> dst:int -> srcs:int list -> unit -> t
val store : pc:int -> addr:int -> srcs:int list -> unit -> t
val branch : pc:int -> taken:bool -> target:int -> srcs:int list -> unit -> t
val jump : pc:int -> target:int -> kind:[ `Plain | `Call | `Return ] -> unit -> t
