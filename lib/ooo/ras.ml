type t = {
  entries : int;
  stack : int array;
  mutable top : int; (* index of next push *)
  mutable depth : int;
}

let create ?(entries = 8) () =
  { entries; stack = Array.make entries 0; top = 0; depth = 0 }

let push t addr =
  t.stack.(t.top) <- addr;
  t.top <- (t.top + 1) mod t.entries;
  t.depth <- min t.entries (t.depth + 1)

let pop t =
  if t.depth = 0 then 0
  else begin
    t.top <- (t.top + t.entries - 1) mod t.entries;
    t.depth <- t.depth - 1;
    t.stack.(t.top)
  end

let flush t =
  Array.fill t.stack 0 t.entries 0;
  t.top <- 0;
  t.depth <- 0

let depth t = t.depth

type snapshot = { s_stack : int array; s_top : int; s_depth : int }

let snapshot t = { s_stack = Array.copy t.stack; s_top = t.top; s_depth = t.depth }

let restore t s =
  Array.blit s.s_stack 0 t.stack 0 t.entries;
  t.top <- s.s_top;
  t.depth <- s.s_depth
