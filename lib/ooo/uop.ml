type pipe_class = Pipe_alu | Pipe_mem | Pipe_fp

type kind =
  | Alu of { latency : int; pipe : pipe_class }
  | Load of { addr : int }
  | Store of { addr : int }
  | Branch of { taken : bool; target : int }
  | Jump of { target : int; kind : [ `Plain | `Call | `Return ] }
  | Enter_kernel
  | Exit_kernel

type t = {
  pc : int;
  kind : kind;
  dst : int option;
  srcs : int list;
}

let is_mem u = match u.kind with Load _ | Store _ -> true | _ -> false

let is_control u =
  match u.kind with Branch _ | Jump _ -> true | _ -> false

let next_pc u =
  match u.kind with
  | Branch { taken = true; target; _ } -> target
  | Jump { target; _ } -> target
  | Alu _ | Load _ | Store _ | Branch { taken = false; _ } | Enter_kernel
  | Exit_kernel ->
    u.pc + 4

let to_string u =
  let dst = match u.dst with None -> "-" | Some d -> Printf.sprintf "x%d" d in
  let srcs = String.concat "," (List.map (Printf.sprintf "x%d") u.srcs) in
  let kind =
    match u.kind with
    | Alu { latency; _ } -> Printf.sprintf "alu[%d]" latency
    | Load { addr } -> Printf.sprintf "load 0x%x" addr
    | Store { addr } -> Printf.sprintf "store 0x%x" addr
    | Branch { taken; target } ->
      Printf.sprintf "branch %s 0x%x" (if taken then "T" else "N") target
    | Jump { target; kind } ->
      Printf.sprintf "jump%s 0x%x"
        (match kind with `Plain -> "" | `Call -> ".call" | `Return -> ".ret")
        target
    | Enter_kernel -> "enter_kernel"
    | Exit_kernel -> "exit_kernel"
  in
  Printf.sprintf "0x%x: %s dst=%s srcs=[%s]" u.pc kind dst srcs

let alu ?(latency = 1) ?(pipe = Pipe_alu) ~pc ~dst ~srcs () =
  { pc; kind = Alu { latency; pipe }; dst = Some dst; srcs }

let load ~pc ~addr ~dst ~srcs () =
  { pc; kind = Load { addr }; dst = Some dst; srcs }

let store ~pc ~addr ~srcs () = { pc; kind = Store { addr }; dst = None; srcs }

let branch ~pc ~taken ~target ~srcs () =
  { pc; kind = Branch { taken; target }; dst = None; srcs }

let jump ~pc ~target ~kind () =
  {
    pc;
    kind = Jump { target; kind };
    dst = (match kind with `Call -> Some 1 | _ -> None);
    srcs = (match kind with `Return -> [ 1 ] | _ -> []);
  }
