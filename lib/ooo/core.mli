(** Cycle-level out-of-order core (RiscyOO-style, Figure 4): 2-wide
    fetch with BTB + tournament predictor + RAS, rename with a physical
    register free list, 80-entry ROB, per-pipe issue queues (2 ALU, 1 MEM,
    1 FP), load/store queues with store-to-load forwarding, a 4-entry
    store buffer, non-blocking L1s, two-level TLBs and a hardware page
    walker.

    Trace-driven: µops arrive from a stream carrying the committed path;
    on a branch misprediction fetch stalls until the branch resolves in
    execute plus the redirect penalty (wrong-path work is not simulated,
    its fetch-starvation cost is).

    MI6 features:
    - [flush_on_trap]: at every [Enter_kernel]/[Exit_kernel] boundary the
      core drains, then purges all per-core microarchitectural state at
      the hardware flush rates of Section 7.1 (>= [purge_floor] cycles:
      one L1 line per cycle, one L2-TLB set per cycle, 8 predictor
      entries per cycle), leaving predictors, TLBs, and L1s in their
      public reset state.
    - [nonspec_mem]: a memory µop renames only once the ROB is empty
      (Section 7.5's NONSPEC implementation). *)

type t

val create :
  ?trace:Trace.t ->
  ?selfprof:Selfprof.t ->
  ?id:int ->
  Core_config.t ->
  l1i:L1.t ->
  l1d:L1.t ->
  stream:(unit -> Uop.t option) ->
  stats:Stats.t ->
  pt_base_line:int ->
  t

(** [tick t ~now] advances the core one cycle.  The caller then ticks the
    L1s (routing completions back via {!mem_complete} / {!icache_complete})
    and the LLC. *)
val tick : t -> now:int -> unit

(** [mem_complete t ~now ~id] — a D-side request (load, page-walk read, or
    store-buffer drain) finished. *)
val mem_complete : t -> now:int -> id:int -> unit

(** [icache_complete t ~id] — the pending I-fetch line arrived. *)
val icache_complete : t -> id:int -> unit

(** [finished t] — stream exhausted and the machine is drained. *)
val finished : t -> bool

val committed_instructions : t -> int

(** [set_on_commit t f] installs a retirement probe: [f u] fires once per
    committed µop, in retirement (program) order, including the
    [Enter_kernel]/[Exit_kernel] markers that commit at rename.  Default
    is a no-op; used by the differential test harness to compare the
    out-of-order core's retirement stream against the in-order reference
    model. *)
val set_on_commit : t -> (Uop.t -> unit) -> unit

(** [purging t] — core is inside a purge (tests). *)
val purging : t -> bool

(** [predictor_signature t] hashes branch-predictor + BTB + RAS state
    (purge tests: must equal a fresh core's after purge). *)
val predictor_signature : t -> int

(** [debug_quiescence t] — internal-state summary for debugging. *)
val debug_quiescence : t -> string

(** [request_purge t] — external (security-monitor initiated) purge, used
    by the machine model when descheduling an enclave outside a trap
    boundary.  Takes effect like a trap-boundary purge. *)
val request_purge : t -> unit

(** Load issue-to-completion latency (cache-path loads; forwarded loads
    excluded), in cycles. *)
val load_latency : t -> Histogram.t

(** Purge durations (quiesce start to machine-clean), in cycles. *)
val purge_latency : t -> Histogram.t

(** Page-walk start-to-finish latency, in cycles. *)
val walk_latency : t -> Histogram.t

(** {2 Occupancy probes} — instantaneous structure occupancy, sampled by
    the machine once per cycle when occupancy tracking is on. *)

val rob_occupancy : t -> int
val iq_occupancy : t -> int  (** all issue queues summed *)

val lq_occupancy : t -> int
val sq_occupancy : t -> int
val sb_occupancy : t -> int

(** [in_flight_uops t] — renamed-but-unretired µops oldest-first, each
    with its ROB state (["waiting"], ["issued"], ["done"]); rendered by
    causal-slice reports. *)
val in_flight_uops : t -> (Uop.t * string) list

(** [last_cycle_cause t] — the {!Cpistack.categories} index the last tick
    was attributed to (feeds per-stall-cause quiet-cycle accounting). *)
val last_cycle_cause : t -> int

(** [structural_signature t] folds the core's structure state — fetch
    queue, ROB, issue/load/store queues, store buffer, pending events,
    page walker, purge machinery — into a {!Statesig} hash.  Predictors,
    TLB contents, and renaming bookkeeping are excluded: they only
    change in cycles that also move an included structure. *)
val structural_signature : t -> int

(** [dump_state t buf] appends a labelled rendering of the same state
    [structural_signature] folds (the quiet-cycle oracle). *)
val dump_state : t -> Buffer.t -> unit

(** Value snapshot of {e all} behavior-relevant core state: front end,
    ROB, rename tables, issue/load/store queues, store buffer, deferred
    events, purge machinery, predictors (BTB, tournament, RAS), TLBs,
    translation cache, and page walker — everything
    [structural_signature] excludes included.  Event and walker
    continuations capture heap records that [restore] rewinds in place,
    so a checkpoint is only valid on the [t] that produced it.  The µop
    stream, the L1s, and the stats table are owned by the machine and
    checkpointed there; [set_on_commit] probes are left untouched.

    [save ~omit_predictors:true] deliberately leaves predictor state out
    — restore then leaves the current predictor contents in place.  This
    exists solely as the non-vacuity witness for the checkpoint
    determinism property: replay from such a checkpoint must be
    detectably wrong. *)
type checkpoint

val save : ?omit_predictors:bool -> t -> checkpoint
val restore : t -> checkpoint -> unit
