type t = {
  fetch_width : int;
  commit_width : int;
  rob_entries : int;
  phys_regs : int;
  iq_entries : int;
  alu_pipes : int;
  fp_pipes : int;
  lq_entries : int;
  sq_entries : int;
  sb_entries : int;
  dtlb_misses : int;
  l2tlb_latency : int;
  redirect_penalty : int;
  decode_redirect : int;
  flush_on_trap : bool;
  nonspec_mem : bool;
  save_restore_predictors : bool;
  purge_floor : int;
  llc_roundtrip_hint : int;
}

let default =
  {
    fetch_width = 2;
    commit_width = 2;
    rob_entries = 80;
    phys_regs = 128;
    iq_entries = 16;
    alu_pipes = 2;
    fp_pipes = 1;
    lq_entries = 24;
    sq_entries = 14;
    sb_entries = 4;
    dtlb_misses = 4;
    l2tlb_latency = 4;
    redirect_penalty = 7;
    decode_redirect = 2;
    flush_on_trap = false;
    nonspec_mem = false;
    save_restore_predictors = false;
    purge_floor = 512;
    llc_roundtrip_hint = 60;
  }
