(** Out-of-order core parameters (paper Figure 4) and the per-variant
    security knobs of Section 7. *)

type t = {
  fetch_width : int;  (** 2-wide superscalar *)
  commit_width : int;  (** 2-way commit *)
  rob_entries : int;  (** 80 *)
  phys_regs : int;  (** rename registers beyond the 32 architectural *)
  iq_entries : int;  (** per-pipeline issue queue: 16 *)
  alu_pipes : int;  (** 2 *)
  fp_pipes : int;  (** 1 (FP/MUL/DIV) *)
  lq_entries : int;  (** 24 *)
  sq_entries : int;  (** 14 *)
  sb_entries : int;  (** 4-entry store buffer *)
  dtlb_misses : int;  (** D TLB max 4 requests *)
  l2tlb_latency : int;  (** L2 TLB lookup latency *)
  redirect_penalty : int;  (** front-end refill after a resolved redirect *)
  decode_redirect : int;  (** cheaper redirect for BTB-missing direct jumps *)
  flush_on_trap : bool;  (** FLUSH / MI6 variants: purge at trap entry+exit *)
  nonspec_mem : bool;
      (** NONSPEC: a memory µop renames only when the ROB is empty *)
  save_restore_predictors : bool;
      (** Section 6 optional extension: at a trap-entry purge, save the
          user domain's predictor state and reset; at the matching
          trap-return purge, restore it — the user's own warm state
          returns, the kernel still saw a public state, and nothing
          crosses domains *)
  purge_floor : int;
      (** minimum purge stall (512: slowest structure at its per-cycle
          flush rate, Section 7.1) *)
  llc_roundtrip_hint : int;
      (** CPI-stack attribution boundary: a ROB-head memory stall at most
          this old is charged to [l1_miss] (the access is assumed served
          by the LLC); older stalls to [llc_dram].  Must sit between the
          LLC-hit and DRAM round-trip latencies. *)
}

val default : t
