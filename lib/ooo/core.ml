let sb_tag = 1 lsl 41
let never = max_int

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type rob_state = Rs_waiting | Rs_issued | Rs_done

type rob_entry = {
  u : Uop.t;
  dst_phys : int option;
  old_phys : int option; (* previous mapping of the dst, freed at commit *)
  src_phys : int list;
  lq_slot : int option;
  sq_slot : int option;
  mutable state : rob_state;
  mutable mispredict : bool;
}

type sq_entry = { sq_line : int; mutable sq_addr_ready : bool }

type purge_phase = Pp_none | Pp_quiesce | Pp_flush of int (* start cycle *)

type purge_kind = Pk_enter | Pk_exit | Pk_external

type predictor_ctx = {
  px_tournament : Tournament.snapshot;
  px_btb : Btb.snapshot;
}

type t = {
  cfg : Core_config.t;
  l1i : L1.t;
  l1d : L1.t;
  stream : unit -> Uop.t option;
  stats : Stats.t;
  (* Front end *)
  btb : Btb.t;
  tournament : Tournament.t;
  ras : Ras.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  l2tlb : Tlb.t;
  tcache : Trans_cache.t;
  ptw : Ptw.t;
  fetch_q : rob_ref Fifo.t;
  mutable stream_done : bool;
  mutable fetch_stall_until : int;
  mutable fetch_blocked_on_resolve : bool;
  mutable fetch_blocked_on_trap : bool;
  mutable fetch_wait_icache : bool;
  mutable fetch_wait_itlb : bool;
  mutable last_fetch_line : int;
  mutable last_fetch_page : int;
  (* Rename / backend *)
  rob : rob_entry option array;
  mutable rob_head : int;
  mutable rob_tail : int;
  mutable rob_count : int;
  map_table : int array; (* logical -> phys *)
  free_list : int Queue.t;
  ready_at : int array; (* per phys reg *)
  iq_alu : int list ref array; (* rob indices, oldest first (reversed store) *)
  iq_mem : int list ref;
  iq_fp : int list ref;
  lq : bool array; (* slot busy *)
  sq : sq_entry option array;
  mutable sq_head : int;
  mutable sq_tail : int;
  mutable sq_count : int;
  sb : bool array; (* store buffer slots busy *)
  sb_lines : int array; (* line held by each store-buffer slot *)
  sb_pending : int Queue.t; (* sb slots waiting to drain *)
  mutable dtlb_outstanding : int;
  events : (int * (unit -> unit)) list ref; (* deferred continuations *)
  mutable purge : purge_phase;
  mutable purge_kind : purge_kind;
  mutable saved_predictors : predictor_ctx option;
  mutable purge_requested : bool;
  mutable committed : int;
  mutable now : int;
  (* Observability *)
  trace : Trace.t;
  selfprof : Selfprof.t;
  id : int; (* core index, for trace attribution *)
  mutable last_cpi : int; (* Cpistack category index of the last tick *)
  mutable purge_started : int;
  lq_issued_at : int array; (* per LQ slot: cycle the load issued *)
  load_lat : Histogram.t; (* load issue-to-complete, cache path only *)
  purge_lat : Histogram.t; (* full purge duration *)
  mutable on_commit : Uop.t -> unit; (* retirement probe, default no-op *)
}

and rob_ref = { pre_uop : Uop.t; pre_mispredict : bool }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(trace = Trace.null) ?(selfprof = Selfprof.null) ?(id = 0) cfg
    ~l1i ~l1d ~stream ~stats ~pt_base_line =
  let tcache = Trans_cache.create ~entries_per_level:24 ~levels:2 in
  let free_list = Queue.create () in
  for p = 32 to cfg.Core_config.phys_regs - 1 do
    Queue.add p free_list
  done;
  {
    cfg;
    l1i;
    l1d;
    stream;
    stats;
    btb = Btb.create ();
    tournament = Tournament.create ();
    ras = Ras.create ();
    itlb = Tlb.create Tlb.l1_config;
    dtlb = Tlb.create Tlb.l1_config;
    l2tlb = Tlb.create Tlb.l2_config;
    tcache;
    ptw =
      Ptw.create ~trace ~core:id ~max_walks:2 ~tcache ~pt_base_line
        ~table_window_lines:4096 ();
    fetch_q = Fifo.create ~capacity:16;
    stream_done = false;
    fetch_stall_until = 0;
    fetch_blocked_on_resolve = false;
    fetch_blocked_on_trap = false;
    fetch_wait_icache = false;
    fetch_wait_itlb = false;
    last_fetch_line = -1;
    last_fetch_page = -1;
    rob = Array.make cfg.Core_config.rob_entries None;
    rob_head = 0;
    rob_tail = 0;
    rob_count = 0;
    map_table = Array.init 32 (fun i -> i);
    free_list;
    ready_at = Array.make cfg.Core_config.phys_regs 0;
    iq_alu = Array.init cfg.Core_config.alu_pipes (fun _ -> ref []);
    iq_mem = ref [];
    iq_fp = ref [];
    lq = Array.make cfg.Core_config.lq_entries false;
    sq = Array.make cfg.Core_config.sq_entries None;
    sq_head = 0;
    sq_tail = 0;
    sq_count = 0;
    sb = Array.make cfg.Core_config.sb_entries false;
    sb_lines = Array.make cfg.Core_config.sb_entries 0;
    sb_pending = Queue.create ();
    dtlb_outstanding = 0;
    events = ref [];
    purge = Pp_none;
    purge_kind = Pk_external;
    saved_predictors = None;
    purge_requested = false;
    committed = 0;
    now = 0;
    trace;
    selfprof;
    id;
    last_cpi = 6;
    on_commit = ignore;
    purge_started = 0;
    lq_issued_at = Array.make cfg.Core_config.lq_entries 0;
    load_lat = Histogram.create ();
    purge_lat = Histogram.create ();
  }

let committed_instructions t = t.committed
let set_on_commit t f = t.on_commit <- f
let purging t = t.purge <> Pp_none
let load_latency t = t.load_lat
let purge_latency t = t.purge_lat
let walk_latency t = Ptw.walk_latency t.ptw

let purge_kind_name = function
  | Pk_enter -> "enter"
  | Pk_exit -> "exit"
  | Pk_external -> "external"

let begin_purge t kind =
  t.purge <- Pp_quiesce;
  t.purge_kind <- kind;
  t.purge_started <- t.now;
  if Trace.active t.trace Trace.Purge then begin
    Trace.emit t.trace ~now:t.now
      (Trace.Purge_begin { core = t.id; kind = purge_kind_name kind });
    Trace.emit t.trace ~now:t.now
      (Trace.Purge_phase { core = t.id; phase = "quiesce" })
  end

let predictor_signature t =
  (Tournament.state_signature t.tournament * 31)
  + (Btb.occupancy t.btb * 7)
  + Ras.depth t.ras

let request_purge t = t.purge_requested <- true

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let after t delay k = t.events := (t.now + delay, k) :: !(t.events)

let run_events t =
  let due, rest = List.partition (fun (at, _) -> at <= t.now) !(t.events) in
  t.events := rest;
  (* Oldest first for determinism. *)
  List.iter (fun (_, k) -> k ()) (List.rev due)

(* ------------------------------------------------------------------ *)
(* Translation (D-side)                                                *)
(* ------------------------------------------------------------------ *)

(* Attempt to begin translation; [k] fires when the translation is
   available.  Returns false when the DTLB cannot take another miss this
   cycle (caller retries next cycle). *)
let translate_d t ~addr ~k =
  let vpage = addr / 4096 in
  if Tlb.lookup t.dtlb ~vpage then begin
    k ();
    true
  end
  else if t.dtlb_outstanding >= t.cfg.Core_config.dtlb_misses then false
  else begin
    Stats.incr t.stats "core.dtlb_misses";
    t.dtlb_outstanding <- t.dtlb_outstanding + 1;
    after t t.cfg.Core_config.l2tlb_latency (fun () ->
        if Tlb.lookup t.l2tlb ~vpage then begin
          Tlb.insert t.dtlb ~vpage;
          t.dtlb_outstanding <- t.dtlb_outstanding - 1;
          k ()
        end
        else begin
          Stats.incr t.stats "core.l2tlb_misses";
          (* Hardware walk; waits for a walker slot if both are busy. *)
          let rec start_walk () =
            if Ptw.can_start t.ptw then
              Ptw.start t.ptw ~vpage ~on_done:(fun ~reads:_ ->
                  Tlb.insert t.l2tlb ~vpage;
                  Tlb.insert t.dtlb ~vpage;
                  t.dtlb_outstanding <- t.dtlb_outstanding - 1;
                  k ())
            else after t 1 start_walk
          in
          start_walk ()
        end);
    true
  end

(* ------------------------------------------------------------------ *)
(* ROB helpers                                                         *)
(* ------------------------------------------------------------------ *)

let rob_entry t idx =
  match t.rob.(idx) with
  | Some e -> e
  | None -> failwith "Core: dangling ROB index"

let rob_full t = t.rob_count = Array.length t.rob
let rob_empty t = t.rob_count = 0

let srcs_ready t e = List.for_all (fun p -> t.ready_at.(p) <= t.now) e.src_phys

let mark_done t idx =
  let e = rob_entry t idx in
  e.state <- Rs_done;
  match e.dst_phys with
  | Some p -> t.ready_at.(p) <- min t.ready_at.(p) t.now
  | None -> ()

let set_dst_ready_at t e at =
  match e.dst_phys with
  | Some p -> t.ready_at.(p) <- at
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Fetch                                                               *)
(* ------------------------------------------------------------------ *)

(* Handle I-side line/page transitions; true when the µop's line is
   available this cycle. *)
let fetch_mem_ok t (u : Uop.t) =
  let line = u.Uop.pc lsr 6 in
  let page = u.Uop.pc lsr 12 in
  if t.fetch_wait_icache || t.fetch_wait_itlb then false
  else if line = t.last_fetch_line then true
  else begin
    (* Page transition first: I-TLB. *)
    if page <> t.last_fetch_page && not (Tlb.lookup t.itlb ~vpage:page) then begin
      Stats.incr t.stats "core.itlb_misses";
      t.fetch_wait_itlb <- true;
      after t t.cfg.Core_config.l2tlb_latency (fun () ->
          if Tlb.lookup t.l2tlb ~vpage:page then begin
            Tlb.insert t.itlb ~vpage:page;
            t.fetch_wait_itlb <- false
          end
          else begin
            let rec start_walk () =
              if Ptw.can_start t.ptw then
                Ptw.start t.ptw ~vpage:page ~on_done:(fun ~reads:_ ->
                    Tlb.insert t.l2tlb ~vpage:page;
                    Tlb.insert t.itlb ~vpage:page;
                    t.fetch_wait_itlb <- false)
              else after t 1 start_walk
            in
            start_walk ()
          end);
      false
    end
    else begin
      if page <> t.last_fetch_page then t.last_fetch_page <- page;
      (* I-cache: pipelined hits are free; misses stall fetch. *)
      if L1.try_hit t.l1i ~line then begin
        t.last_fetch_line <- line;
        (* Next-line instruction prefetch (RiscyOO fetches ahead). *)
        if L1.probe t.l1i ~line:(line + 1) = Msi.I && L1.can_accept t.l1i
        then L1.request t.l1i ~line:(line + 1) ~store:false ~id:1;
        true
      end
      else if L1.can_accept t.l1i then begin
        L1.request t.l1i ~line ~store:false ~id:0;
        t.fetch_wait_icache <- true;
        t.last_fetch_line <- line;
        (if L1.probe t.l1i ~line:(line + 1) = Msi.I && L1.can_accept t.l1i
         then L1.request t.l1i ~line:(line + 1) ~store:false ~id:1);
        false
      end
      else false
    end
  end

(* Branch prediction at fetch: trains the structures and reports whether
   fetch must stall (resolution-based redirect) or take a small
   decode-time redirect. *)
type fetch_outcome = F_ok | F_stall_until_resolve | F_decode_redirect

let predict_control t (u : Uop.t) =
  match u.Uop.kind with
  | Uop.Branch { taken; target } ->
    Stats.incr t.stats "core.branches";
    let pred_dir = Tournament.predict t.tournament ~pc:u.Uop.pc in
    let btb_target = Btb.predict t.btb ~pc:u.Uop.pc in
    Tournament.update t.tournament ~pc:u.Uop.pc ~taken;
    if taken then Btb.update t.btb ~pc:u.Uop.pc ~target;
    if pred_dir <> taken || (taken && btb_target <> Some target) then begin
      Stats.incr t.stats "core.mispredicts";
      F_stall_until_resolve
    end
    else F_ok
  | Uop.Jump { target; kind } -> (
    match kind with
    | `Plain | `Call ->
      if kind = `Call then Ras.push t.ras (u.Uop.pc + 4);
      let hit = Btb.predict t.btb ~pc:u.Uop.pc = Some target in
      Btb.update t.btb ~pc:u.Uop.pc ~target;
      if hit then F_ok
      else begin
        Stats.incr t.stats "core.btb_jump_misses";
        F_decode_redirect
      end
    | `Return ->
      let pred = Ras.pop t.ras in
      if pred = target then F_ok
      else begin
        Stats.incr t.stats "core.ras_mispredicts";
        Stats.incr t.stats "core.mispredicts";
        F_stall_until_resolve
      end)
  | _ -> F_ok

let fetch_stage t =
  if
    t.now >= t.fetch_stall_until
    && (not t.fetch_blocked_on_resolve)
    && (not t.fetch_blocked_on_trap)
    && not t.stream_done
  then begin
    let budget = ref t.cfg.Core_config.fetch_width in
    let stop = ref false in
    while !budget > 0 && (not !stop) && Fifo.can_enq t.fetch_q do
      match t.stream () with
      | None ->
        t.stream_done <- true;
        stop := true
      | Some u ->
        (* The µop is "fetched" only if its I-line is ready; otherwise it
           still enters the fetch queue but fetch stalls behind it.  We
           model by consuming it and stalling afterwards. *)
        let mem_ok = fetch_mem_ok t u in
        Stats.incr t.stats "core.fetched";
        let mispredicted = ref false in
        (match u.Uop.kind with
        | Uop.Branch _ | Uop.Jump _ -> (
          match predict_control t u with
          | F_ok -> ()
          | F_stall_until_resolve ->
            mispredicted := true;
            t.fetch_blocked_on_resolve <- true;
            stop := true
          | F_decode_redirect ->
            t.fetch_stall_until <- t.now + t.cfg.Core_config.decode_redirect;
            stop := true)
        | Uop.Enter_kernel | Uop.Exit_kernel ->
          (* Trap boundary: fetch may not run ahead into the handler (or
             back into user code) until the trap is delivered — i.e. the
             marker reaches rename with an empty ROB.  Letting the front
             end prefetch across the boundary while the older µops drain
             would warm the next domain's I-lines by an amount that
             depends on the drain, an interrupt-schedule side channel
             the purge could never scrub. *)
          t.fetch_blocked_on_trap <- true;
          stop := true
        | Uop.Alu _ | Uop.Load _ | Uop.Store _ -> ());
        Fifo.enq t.fetch_q { pre_uop = u; pre_mispredict = !mispredicted };
        if not mem_ok then stop := true else decr budget
    done
  end

(* ------------------------------------------------------------------ *)
(* Rename / dispatch                                                   *)
(* ------------------------------------------------------------------ *)

let alloc_lq t =
  let rec go i =
    if i >= Array.length t.lq then None
    else if not t.lq.(i) then Some i
    else go (i + 1)
  in
  go 0

let dispatch_iq t idx (u : Uop.t) =
  match u.Uop.kind with
  | Uop.Load _ | Uop.Store _ -> t.iq_mem := idx :: !(t.iq_mem)
  | Uop.Alu { pipe = Uop.Pipe_fp; _ } -> t.iq_fp := idx :: !(t.iq_fp)
  | Uop.Alu _ | Uop.Branch _ | Uop.Jump _ ->
    (* Pick the shorter ALU issue queue. *)
    let best = ref 0 in
    Array.iteri
      (fun i q ->
        if List.length !q < List.length !(t.iq_alu.(!best)) then best := i
        else ignore q)
      t.iq_alu;
    let q = t.iq_alu.(!best) in
    q := idx :: !q
  | Uop.Enter_kernel | Uop.Exit_kernel -> ()

let iq_len q = List.length !q

let iq_has_room t (u : Uop.t) =
  let cap = t.cfg.Core_config.iq_entries in
  match u.Uop.kind with
  | Uop.Load _ | Uop.Store _ -> iq_len t.iq_mem < cap
  | Uop.Alu { pipe = Uop.Pipe_fp; _ } -> iq_len t.iq_fp < cap
  | Uop.Alu _ | Uop.Branch _ | Uop.Jump _ ->
    Array.exists (fun q -> iq_len q < cap) t.iq_alu
  | Uop.Enter_kernel | Uop.Exit_kernel -> true

let rename_stage t =
  let budget = ref t.cfg.Core_config.fetch_width in
  let stop = ref false in
  while !budget > 0 && (not !stop) && Fifo.can_deq t.fetch_q do
    let { pre_uop = u; pre_mispredict } = Fifo.peek t.fetch_q in
    let is_mem = Uop.is_mem u in
    let is_marker =
      match u.Uop.kind with
      | Uop.Enter_kernel | Uop.Exit_kernel -> true
      | _ -> false
    in
    let nonspec_block =
      t.cfg.Core_config.nonspec_mem && is_mem && not (rob_empty t)
    in
    let marker_block = is_marker && not (rob_empty t) in
    let needs_dst = u.Uop.dst <> None in
    let sq_needed = match u.Uop.kind with Uop.Store _ -> true | _ -> false in
    let lq_needed = match u.Uop.kind with Uop.Load _ -> true | _ -> false in
    if
      rob_full t || nonspec_block || marker_block
      || (needs_dst && Queue.is_empty t.free_list)
      || (not (iq_has_room t u))
      || (sq_needed && t.sq_count = Array.length t.sq)
      || (lq_needed && alloc_lq t = None)
    then stop := true
    else begin
      ignore (Fifo.deq t.fetch_q);
      if is_marker then begin
        (* Serialized trap boundary: costs the trap latency and, in FLUSH
           variants, triggers the purge state machine.  Nothing younger
           may rename this cycle (the purge needs an empty machine). *)
        t.committed <- t.committed + 1;
        t.on_commit u;
        Stats.incr t.stats "core.traps";
        (* Trap delivered: the front end redirects into the handler and
           pays the refill penalty (absorbed by the purge stall on the
           flushing variants). *)
        t.fetch_blocked_on_trap <- false;
        t.fetch_stall_until <-
          max t.fetch_stall_until (t.now + t.cfg.Core_config.redirect_penalty);
        if t.cfg.Core_config.flush_on_trap then begin
          begin_purge t
            (match u.Uop.kind with
            | Uop.Enter_kernel -> Pk_enter
            | _ -> Pk_exit);
          stop := true
        end
      end
      else begin
        let src_phys = List.map (fun r -> t.map_table.(r)) u.Uop.srcs in
        let dst_phys, old_phys =
          match u.Uop.dst with
          | None -> (None, None)
          | Some d ->
            let p = Queue.pop t.free_list in
            let old = t.map_table.(d) in
            t.map_table.(d) <- p;
            t.ready_at.(p) <- never;
            (Some p, Some old)
        in
        let lq_slot =
          if lq_needed then begin
            match alloc_lq t with
            | Some s ->
              t.lq.(s) <- true;
              Some s
            | None -> assert false
          end
          else None
        in
        let sq_slot =
          if sq_needed then begin
            let s = t.sq_tail in
            t.sq_tail <- (t.sq_tail + 1) mod Array.length t.sq;
            t.sq_count <- t.sq_count + 1;
            (match u.Uop.kind with
            | Uop.Store { addr } ->
              t.sq.(s) <- Some { sq_line = addr lsr 6; sq_addr_ready = false }
            | _ -> assert false);
            Some s
          end
          else None
        in
        let idx = t.rob_tail in
        t.rob.(idx) <-
          Some
            {
              u;
              dst_phys;
              old_phys;
              src_phys;
              lq_slot;
              sq_slot;
              state = Rs_waiting;
              mispredict = pre_mispredict;
            };
        t.rob_tail <- (t.rob_tail + 1) mod Array.length t.rob;
        t.rob_count <- t.rob_count + 1;
        dispatch_iq t idx u
      end;
      decr budget
    end
  done

(* ------------------------------------------------------------------ *)
(* Issue / execute                                                     *)
(* ------------------------------------------------------------------ *)

(* Oldest-first scan: queues store newest-first, so scan the reverse. *)
let pick_ready t q =
  let rec go = function
    | [] -> None
    | idx :: rest ->
      let e = rob_entry t idx in
      if e.state = Rs_waiting && srcs_ready t e then Some idx else go rest
  in
  go (List.rev !q)

let remove_from q idx = q := List.filter (fun i -> i <> idx) !q

(* Store-to-load forwarding: an older SQ entry with a ready address on the
   same line forwards, as does a store-buffer entry that has retired but
   not yet drained to the D-cache.  (Timing model: unknown older store
   addresses do not block the load — RiscyOO issues loads
   speculatively.) *)
let forwardable t line =
  let found = ref false in
  Array.iter
    (fun slot ->
      match slot with
      | Some s when s.sq_addr_ready && s.sq_line = line -> found := true
      | _ -> ())
    t.sq;
  Array.iteri
    (fun i busy -> if busy && t.sb_lines.(i) = line then found := true)
    t.sb;
  !found

let issue_alu_like t idx =
  let e = rob_entry t idx in
  e.state <- Rs_issued;
  let latency =
    match e.u.Uop.kind with
    | Uop.Alu { latency; _ } -> latency
    | Uop.Branch _ | Uop.Jump _ -> 1
    | _ -> assert false
  in
  set_dst_ready_at t e (t.now + latency);
  after t latency (fun () ->
      e.state <- Rs_done;
      (* Control resolution restarts a stalled front end. *)
      match e.u.Uop.kind with
      | Uop.Branch _ | Uop.Jump _ ->
        if e.mispredict then begin
          e.mispredict <- false;
          t.fetch_blocked_on_resolve <- false;
          t.fetch_stall_until <-
            max t.fetch_stall_until
              (t.now + t.cfg.Core_config.redirect_penalty)
        end
      | _ -> ())

let issue_mem t idx =
  let e = rob_entry t idx in
  e.state <- Rs_issued;
  match e.u.Uop.kind with
  | Uop.Store { addr } ->
    (* Address generation + translation; the store "executes" when its
       address is translated and entered into the SQ. *)
    let k () =
      after t 1 (fun () ->
          (match e.sq_slot with
          | Some s -> (
            match t.sq.(s) with
            | Some sq -> sq.sq_addr_ready <- true
            | None -> assert false)
          | None -> assert false);
          e.state <- Rs_done)
    in
    if not (translate_d t ~addr ~k) then e.state <- Rs_waiting (* retry *)
  | Uop.Load { addr } ->
    (match e.lq_slot with
    | Some s -> t.lq_issued_at.(s) <- t.now
    | None -> ());
    let line = addr lsr 6 in
    let k () =
      if forwardable t line then begin
        Stats.incr t.stats "core.store_forwards";
        after t 1 (fun () -> mark_done t idx)
      end
      else begin
        let lq_slot = match e.lq_slot with Some s -> s | None -> assert false in
        let rec try_cache () =
          if L1.can_accept t.l1d then
            L1.request t.l1d ~line ~store:false ~id:lq_slot
          else after t 1 try_cache
        in
        try_cache ()
      end
    in
    if not (translate_d t ~addr ~k) then e.state <- Rs_waiting
  | _ -> assert false

let issue_stage t =
  Array.iter
    (fun q ->
      match pick_ready t q with
      | Some idx ->
        remove_from q idx;
        issue_alu_like t idx
      | None -> ())
    t.iq_alu;
  (match pick_ready t t.iq_fp with
  | Some idx ->
    remove_from t.iq_fp idx;
    issue_alu_like t idx
  | None -> ());
  match pick_ready t t.iq_mem with
  | Some idx -> (
    issue_mem t idx;
    (* Leave in the queue on a DTLB-port stall (state reverted). *)
    let e = rob_entry t idx in
    match e.state with
    | Rs_waiting -> ()
    | _ -> remove_from t.iq_mem idx)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Store buffer                                                        *)
(* ------------------------------------------------------------------ *)

let alloc_sb t =
  let rec go i =
    if i >= Array.length t.sb then None
    else if not t.sb.(i) then Some i
    else go (i + 1)
  in
  go 0

let sb_stage t =
  match Queue.peek_opt t.sb_pending with
  | Some slot ->
    if L1.can_accept t.l1d then begin
      ignore (Queue.pop t.sb_pending);
      L1.request t.l1d ~line:t.sb_lines.(slot) ~store:true ~id:(sb_tag lor slot)
    end
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

let commit_stage t =
  let budget = ref t.cfg.Core_config.commit_width in
  let stop = ref false in
  while !budget > 0 && (not !stop) && not (rob_empty t) do
    match t.rob.(t.rob_head) with
    | None -> assert false
    | Some e ->
      if e.state <> Rs_done then stop := true
      else begin
        let can_retire =
          match e.u.Uop.kind with
          | Uop.Store _ -> (
            (* Needs a store-buffer slot; the SB drains in background. *)
            match alloc_sb t with
            | Some slot ->
              t.sb.(slot) <- true;
              (match e.sq_slot with
              | Some s -> (
                match t.sq.(s) with
                | Some sq -> t.sb_lines.(slot) <- sq.sq_line
                | None -> assert false)
              | None -> assert false);
              Queue.add slot t.sb_pending;
              true
            | None ->
              Stats.incr t.stats "core.sb_full_stalls";
              false)
          | _ -> true
        in
        if not can_retire then stop := true
        else begin
          (match e.old_phys with
          | Some p -> Queue.add p t.free_list
          | None -> ());
          (match e.lq_slot with Some s -> t.lq.(s) <- false | None -> ());
          (match e.sq_slot with
          | Some s ->
            t.sq.(s) <- None;
            t.sq_head <- (t.sq_head + 1) mod Array.length t.sq;
            t.sq_count <- t.sq_count - 1
          | None -> ());
          t.rob.(t.rob_head) <- None;
          t.rob_head <- (t.rob_head + 1) mod Array.length t.rob;
          t.rob_count <- t.rob_count - 1;
          t.committed <- t.committed + 1;
          t.on_commit e.u;
          decr budget
        end
      end
  done

(* ------------------------------------------------------------------ *)
(* Purge state machine (Section 6 / 7.1)                               *)
(* ------------------------------------------------------------------ *)

let backend_quiescent t =
  rob_empty t
  && Queue.is_empty t.sb_pending
  && Array.for_all not t.sb
  && L1.in_flight t.l1d = 0
  && L1.in_flight t.l1i = 0
  && Ptw.active_walks t.ptw = 0
  && t.dtlb_outstanding = 0
  && !(t.events) = []

let debug_quiescence t =
  Printf.sprintf
    "rob=%d sbp=%d sb=%b l1d=%d l1i=%d ptw=%d dtlb=%d events=%d wait_ic=%b wait_it=%b"
    t.rob_count (Queue.length t.sb_pending)
    (Array.exists (fun x -> x) t.sb)
    (L1.in_flight t.l1d) (L1.in_flight t.l1i) (Ptw.active_walks t.ptw)
    t.dtlb_outstanding (List.length !(t.events)) t.fetch_wait_icache
    t.fetch_wait_itlb

let purge_stage t =
  match t.purge with
  | Pp_none -> ()
  | Pp_quiesce ->
    Stats.incr t.stats "core.purge_stall_cycles";
    if backend_quiescent t then begin
      L1.begin_flush t.l1i;
      L1.begin_flush t.l1d;
      if Trace.active t.trace Trace.Purge then
        Trace.emit t.trace ~now:t.now
          (Trace.Purge_phase { core = t.id; phase = "flush" });
      t.purge <- Pp_flush t.now
    end
  | Pp_flush started ->
    Stats.incr t.stats "core.purge_stall_cycles";
    (* One line per cycle per L1; TLB sets and predictor entries flush in
       parallel within the purge floor. *)
    let i_done = if L1.is_flushing t.l1i then L1.flush_step t.l1i else true in
    let d_done = if L1.is_flushing t.l1d then L1.flush_step t.l1d else true in
    if i_done && d_done && t.now - started >= t.cfg.Core_config.purge_floor
    then begin
      (* Predictor handling: the optional save/restore extension keeps a
         domain's own predictor state across the kernel excursion; the
         kernel itself always starts from the public reset state. *)
      let sr = t.cfg.Core_config.save_restore_predictors in
      (match (sr, t.purge_kind, t.saved_predictors) with
      | true, Pk_enter, _ ->
        t.saved_predictors <-
          Some
            {
              px_tournament = Tournament.snapshot t.tournament;
              px_btb = Btb.snapshot t.btb;
            };
        Tournament.flush t.tournament;
        Btb.flush t.btb
      | true, Pk_exit, Some ctx ->
        Tournament.restore t.tournament ctx.px_tournament;
        Btb.restore t.btb ctx.px_btb;
        t.saved_predictors <- None;
        Stats.incr t.stats "core.predictor_restores"
      | _ ->
        t.saved_predictors <- None;
        Tournament.flush t.tournament;
        Btb.flush t.btb);
      Ras.flush t.ras;
      Tlb.flush_all t.itlb;
      Tlb.flush_all t.dtlb;
      Tlb.flush_all t.l2tlb;
      Trans_cache.flush t.tcache;
      t.last_fetch_line <- -1;
      t.last_fetch_page <- -1;
      Stats.incr t.stats "core.purges";
      let dur = t.now - t.purge_started in
      Histogram.add t.purge_lat dur;
      if Trace.active t.trace Trace.Purge then
        Trace.emit t.trace ~now:t.now
          (Trace.Purge_end { core = t.id; cycles = dur });
      t.purge <- Pp_none
    end

(* L1.flush_step raises when not flushing; during Pp_flush both are.  The
   two flush_step calls above also send the per-line eviction notices that
   make L1 flushes cost one LLC message per line (Section 7.1). *)

(* ------------------------------------------------------------------ *)
(* CPI-stack attribution                                               *)
(* ------------------------------------------------------------------ *)

(* Top-down attribution: every tick is charged to exactly one
   [core.cpi.*] counter, so within any measurement window the seven
   buckets sum to the cycle count by construction (mi6_sim profile and
   the regression DB rely on that invariant).  Priority order: useful
   commit beats everything; a purge explains any stall during it; an
   empty ROB is a front-end problem (redirect refill, I-cache miss,
   I-TLB refill); otherwise the ROB head names the bottleneck — memory
   stalls split into TLB-walk, L1-miss (served within the LLC round
   trip) and LLC/DRAM (older than the round-trip hint). *)
(* Counter names indexed by Cpistack.categories order:
   base / mispredict / l1_miss / llc_dram / tlb_walk / purge / other. *)
let cpi_counters =
  [|
    "core.cpi.base";
    "core.cpi.mispredict";
    "core.cpi.l1_miss";
    "core.cpi.llc_dram";
    "core.cpi.tlb_walk";
    "core.cpi.purge";
    "core.cpi.other";
  |]

let attribute_cycle t ~committed_before =
  let cat =
    if t.committed > committed_before then 0 (* base *)
    else if purging t then 5 (* purge *)
    else if rob_empty t then
      if t.fetch_blocked_on_resolve || t.now < t.fetch_stall_until then
        1 (* mispredict *)
      else if t.fetch_wait_icache then 2 (* l1_miss *)
      else if t.fetch_wait_itlb then 4 (* tlb_walk *)
      else 6 (* other *)
    else begin
      let e = rob_entry t t.rob_head in
      match e.u.Uop.kind with
      | (Uop.Load _ | Uop.Store _) when e.state <> Rs_done ->
        if t.dtlb_outstanding > 0 || Ptw.active_walks t.ptw > 0 then
          4 (* tlb_walk *)
        else begin
          match (e.u.Uop.kind, e.lq_slot, e.state) with
          | Uop.Load _, Some s, Rs_issued ->
            if t.now - t.lq_issued_at.(s) > t.cfg.Core_config.llc_roundtrip_hint
            then 3 (* llc_dram *)
            else 2 (* l1_miss *)
          | _ -> 6
        end
      | _ -> 6
    end
  in
  t.last_cpi <- cat;
  Stats.incr t.stats cpi_counters.(cat)

(* The stall category (Cpistack.categories index) the last tick was
   attributed to; feeds the per-cause quiet-cycle accounting. *)
let last_cycle_cause t = t.last_cpi

(* ------------------------------------------------------------------ *)
(* Tick and completions                                                *)
(* ------------------------------------------------------------------ *)

let tick t ~now =
  t.now <- now;
  let committed_before = t.committed in
  Stats.incr t.stats "core.cycles";
  if now land 255 = 0 && Trace.active t.trace Trace.Core then
    Trace.emit t.trace ~now
      (Trace.Counter { core = t.id; name = "rob"; value = t.rob_count });
  (* Host-cost attribution: the stages run strictly in sequence, so a
     plain [switch] per stage suffices; [p0] (normally [harness]) is
     restored on exit. *)
  let sp = t.selfprof in
  let p0 = Selfprof.switch sp Selfprof.ph_exec in
  run_events t;
  (match t.purge with
  | Pp_quiesce | Pp_flush _ ->
    (* The core idles while purging; only the drain machinery runs. *)
    ignore (Selfprof.switch sp Selfprof.ph_mem);
    sb_stage t;
    ignore (Selfprof.switch sp Selfprof.ph_ptw);
    Ptw.tick t.ptw ~issue:(fun ~line ~id ->
        if L1.can_accept t.l1d then begin
          L1.request t.l1d ~line ~store:false ~id;
          true
        end
        else false);
    ignore (Selfprof.switch sp Selfprof.ph_commit);
    commit_stage t;
    ignore (Selfprof.switch sp Selfprof.ph_purge);
    purge_stage t
  | Pp_none ->
    if t.purge_requested then begin
      t.purge_requested <- false;
      ignore (Selfprof.switch sp Selfprof.ph_purge);
      begin_purge t Pk_external;
      purge_stage t
    end
    else begin
      ignore (Selfprof.switch sp Selfprof.ph_commit);
      commit_stage t;
      ignore (Selfprof.switch sp Selfprof.ph_issue);
      issue_stage t;
      ignore (Selfprof.switch sp Selfprof.ph_mem);
      sb_stage t;
      ignore (Selfprof.switch sp Selfprof.ph_ptw);
      Ptw.tick t.ptw ~issue:(fun ~line ~id ->
          if L1.can_accept t.l1d then begin
            L1.request t.l1d ~line ~store:false ~id;
            true
          end
          else false);
      ignore (Selfprof.switch sp Selfprof.ph_rename);
      rename_stage t;
      ignore (Selfprof.switch sp Selfprof.ph_fetch);
      fetch_stage t
    end);
  attribute_cycle t ~committed_before;
  Selfprof.restore sp p0

let mem_complete t ~now ~id =
  t.now <- max t.now now;
  if id land Ptw.id_tag <> 0 then Ptw.mem_response ~now t.ptw ~id
  else if id land sb_tag <> 0 then t.sb.(id land lnot sb_tag) <- false
  else begin
    (* Load completion: find the ROB entry owning this LQ slot. *)
    let found = ref false in
    Array.iteri
      (fun i entry ->
        match entry with
        | Some e when (not !found) && e.lq_slot = Some id && e.state = Rs_issued
          ->
          found := true;
          ignore i;
          e.state <- Rs_done;
          Histogram.add t.load_lat (now - t.lq_issued_at.(id));
          set_dst_ready_at t e now
        | _ -> ())
      t.rob;
    if not !found then failwith "Core.mem_complete: orphan load completion"
  end

let icache_complete t ~id =
  (* id 1 completions are prefetches; only the demand line unblocks
     fetch. *)
  if id = 0 then t.fetch_wait_icache <- false

let finished t =
  t.stream_done && rob_empty t && Fifo.is_empty t.fetch_q
  && backend_quiescent t && t.purge = Pp_none
  && not t.purge_requested

(* ------------------------------------------------------------------ *)
(* Occupancy probes                                                    *)
(* ------------------------------------------------------------------ *)

let rob_occupancy t = t.rob_count

let iq_occupancy t =
  Array.fold_left
    (fun n q -> n + List.length !q)
    (List.length !(t.iq_mem) + List.length !(t.iq_fp))
    t.iq_alu

let count_busy a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a
let lq_occupancy t = count_busy t.lq
let sq_occupancy t = t.sq_count
let sb_occupancy t = count_busy t.sb

(* In-flight (renamed, not yet retired) µops oldest-first, with the ROB
   state of each; causal-slice reports render these. *)
let in_flight_uops t =
  let n = Array.length t.rob in
  let rec go i cnt acc =
    if cnt = 0 then List.rev acc
    else
      match t.rob.(i) with
      | Some e ->
        let st =
          match e.state with
          | Rs_waiting -> "waiting"
          | Rs_issued -> "issued"
          | Rs_done -> "done"
        in
        go ((i + 1) mod n) (cnt - 1) ((e.u, st) :: acc)
      | None -> go ((i + 1) mod n) cnt acc
  in
  go t.rob_head t.rob_count []

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore                                                *)
(* ------------------------------------------------------------------ *)

(* Deferred-event closures and walker continuations capture the
   ROB-entry and SQ-entry records themselves, so the checkpoint keeps
   those records (not copies) together with the values of their mutable
   fields, and [restore] writes the fields back in place.  A checkpoint
   is therefore only valid on the [t] it was saved from.  The µop
   stream, L1s, stats and trace are owned by the machine, which
   checkpoints them alongside.  [on_commit] is a harness probe, not
   machine state, and is left untouched. *)

type rob_ck = {
  rk_entry : rob_entry;
  rk_state : rob_state;
  rk_mispredict : bool;
}

type sq_ck = { qk_entry : sq_entry; qk_addr_ready : bool }

type predictor_ck = {
  pk_btb : Btb.snapshot;
  pk_tournament : Tournament.snapshot;
  pk_ras : Ras.snapshot;
}

type checkpoint = {
  ck_fetch_q : rob_ref list;
  ck_stream_done : bool;
  ck_fetch_stall_until : int;
  ck_fetch_blocked_on_resolve : bool;
  ck_fetch_blocked_on_trap : bool;
  ck_fetch_wait_icache : bool;
  ck_fetch_wait_itlb : bool;
  ck_last_fetch_line : int;
  ck_last_fetch_page : int;
  ck_rob : rob_ck option array;
  ck_rob_head : int;
  ck_rob_tail : int;
  ck_rob_count : int;
  ck_map_table : int array;
  ck_free_list : int list;
  ck_ready_at : int array;
  ck_iq_alu : int list array;
  ck_iq_mem : int list;
  ck_iq_fp : int list;
  ck_lq : bool array;
  ck_sq : sq_ck option array;
  ck_sq_head : int;
  ck_sq_tail : int;
  ck_sq_count : int;
  ck_sb : bool array;
  ck_sb_lines : int array;
  ck_sb_pending : int list;
  ck_dtlb_outstanding : int;
  ck_events : (int * (unit -> unit)) list;
  ck_purge : purge_phase;
  ck_purge_kind : purge_kind;
  ck_saved_predictors : predictor_ctx option;
  ck_purge_requested : bool;
  ck_committed : int;
  ck_now : int;
  ck_predictors : predictor_ck option; (* None iff deliberately omitted *)
  ck_itlb : Tlb.checkpoint;
  ck_dtlb : Tlb.checkpoint;
  ck_l2tlb : Tlb.checkpoint;
  ck_tcache : Trans_cache.checkpoint;
  ck_ptw : Ptw.checkpoint;
  ck_last_cpi : int;
  ck_purge_started : int;
  ck_lq_issued_at : int array;
  ck_load_lat : Histogram.t;
  ck_purge_lat : Histogram.t;
}

let save ?(omit_predictors = false) t =
  {
    ck_fetch_q = Fifo.to_list t.fetch_q;
    ck_stream_done = t.stream_done;
    ck_fetch_stall_until = t.fetch_stall_until;
    ck_fetch_blocked_on_resolve = t.fetch_blocked_on_resolve;
    ck_fetch_blocked_on_trap = t.fetch_blocked_on_trap;
    ck_fetch_wait_icache = t.fetch_wait_icache;
    ck_fetch_wait_itlb = t.fetch_wait_itlb;
    ck_last_fetch_line = t.last_fetch_line;
    ck_last_fetch_page = t.last_fetch_page;
    ck_rob =
      Array.map
        (Option.map (fun e ->
             { rk_entry = e; rk_state = e.state; rk_mispredict = e.mispredict }))
        t.rob;
    ck_rob_head = t.rob_head;
    ck_rob_tail = t.rob_tail;
    ck_rob_count = t.rob_count;
    ck_map_table = Array.copy t.map_table;
    ck_free_list = List.of_seq (Queue.to_seq t.free_list);
    ck_ready_at = Array.copy t.ready_at;
    ck_iq_alu = Array.map (fun q -> !q) t.iq_alu;
    ck_iq_mem = !(t.iq_mem);
    ck_iq_fp = !(t.iq_fp);
    ck_lq = Array.copy t.lq;
    ck_sq =
      Array.map
        (Option.map (fun s -> { qk_entry = s; qk_addr_ready = s.sq_addr_ready }))
        t.sq;
    ck_sq_head = t.sq_head;
    ck_sq_tail = t.sq_tail;
    ck_sq_count = t.sq_count;
    ck_sb = Array.copy t.sb;
    ck_sb_lines = Array.copy t.sb_lines;
    ck_sb_pending = List.of_seq (Queue.to_seq t.sb_pending);
    ck_dtlb_outstanding = t.dtlb_outstanding;
    ck_events = !(t.events);
    ck_purge = t.purge;
    ck_purge_kind = t.purge_kind;
    ck_saved_predictors = t.saved_predictors;
    ck_purge_requested = t.purge_requested;
    ck_committed = t.committed;
    ck_now = t.now;
    ck_predictors =
      (if omit_predictors then None
       else
         Some
           {
             pk_btb = Btb.snapshot t.btb;
             pk_tournament = Tournament.snapshot t.tournament;
             pk_ras = Ras.snapshot t.ras;
           });
    ck_itlb = Tlb.save t.itlb;
    ck_dtlb = Tlb.save t.dtlb;
    ck_l2tlb = Tlb.save t.l2tlb;
    ck_tcache = Trans_cache.save t.tcache;
    ck_ptw = Ptw.save t.ptw;
    ck_last_cpi = t.last_cpi;
    ck_purge_started = t.purge_started;
    ck_lq_issued_at = Array.copy t.lq_issued_at;
    ck_load_lat = Histogram.copy t.load_lat;
    ck_purge_lat = Histogram.copy t.purge_lat;
  }

let restore t ck =
  Fifo.assign t.fetch_q ck.ck_fetch_q;
  t.stream_done <- ck.ck_stream_done;
  t.fetch_stall_until <- ck.ck_fetch_stall_until;
  t.fetch_blocked_on_resolve <- ck.ck_fetch_blocked_on_resolve;
  t.fetch_blocked_on_trap <- ck.ck_fetch_blocked_on_trap;
  t.fetch_wait_icache <- ck.ck_fetch_wait_icache;
  t.fetch_wait_itlb <- ck.ck_fetch_wait_itlb;
  t.last_fetch_line <- ck.ck_last_fetch_line;
  t.last_fetch_page <- ck.ck_last_fetch_page;
  Array.iteri
    (fun i slot ->
      t.rob.(i) <-
        Option.map
          (fun rk ->
            rk.rk_entry.state <- rk.rk_state;
            rk.rk_entry.mispredict <- rk.rk_mispredict;
            rk.rk_entry)
          slot)
    ck.ck_rob;
  t.rob_head <- ck.ck_rob_head;
  t.rob_tail <- ck.ck_rob_tail;
  t.rob_count <- ck.ck_rob_count;
  Array.blit ck.ck_map_table 0 t.map_table 0 (Array.length t.map_table);
  Queue.clear t.free_list;
  List.iter (fun p -> Queue.add p t.free_list) ck.ck_free_list;
  Array.blit ck.ck_ready_at 0 t.ready_at 0 (Array.length t.ready_at);
  Array.iteri (fun i q -> t.iq_alu.(i) := q) ck.ck_iq_alu;
  t.iq_mem := ck.ck_iq_mem;
  t.iq_fp := ck.ck_iq_fp;
  Array.blit ck.ck_lq 0 t.lq 0 (Array.length t.lq);
  Array.iteri
    (fun i slot ->
      t.sq.(i) <-
        Option.map
          (fun qk ->
            qk.qk_entry.sq_addr_ready <- qk.qk_addr_ready;
            qk.qk_entry)
          slot)
    ck.ck_sq;
  t.sq_head <- ck.ck_sq_head;
  t.sq_tail <- ck.ck_sq_tail;
  t.sq_count <- ck.ck_sq_count;
  Array.blit ck.ck_sb 0 t.sb 0 (Array.length t.sb);
  Array.blit ck.ck_sb_lines 0 t.sb_lines 0 (Array.length t.sb_lines);
  Queue.clear t.sb_pending;
  List.iter (fun s -> Queue.add s t.sb_pending) ck.ck_sb_pending;
  t.dtlb_outstanding <- ck.ck_dtlb_outstanding;
  t.events := ck.ck_events;
  t.purge <- ck.ck_purge;
  t.purge_kind <- ck.ck_purge_kind;
  t.saved_predictors <- ck.ck_saved_predictors;
  t.purge_requested <- ck.ck_purge_requested;
  t.committed <- ck.ck_committed;
  t.now <- ck.ck_now;
  (match ck.ck_predictors with
  | Some pk ->
    Btb.restore t.btb pk.pk_btb;
    Tournament.restore t.tournament pk.pk_tournament;
    Ras.restore t.ras pk.pk_ras
  | None -> ());
  Tlb.restore t.itlb ck.ck_itlb;
  Tlb.restore t.dtlb ck.ck_dtlb;
  Tlb.restore t.l2tlb ck.ck_l2tlb;
  Trans_cache.restore t.tcache ck.ck_tcache;
  Ptw.restore t.ptw ck.ck_ptw;
  t.last_cpi <- ck.ck_last_cpi;
  t.purge_started <- ck.ck_purge_started;
  Array.blit ck.ck_lq_issued_at 0 t.lq_issued_at 0
    (Array.length t.lq_issued_at);
  Histogram.restore ~into:t.load_lat ck.ck_load_lat;
  Histogram.restore ~into:t.purge_lat ck.ck_purge_lat

(* ------------------------------------------------------------------ *)
(* Structure state (quiet-cycle detector)                              *)
(* ------------------------------------------------------------------ *)

(* The fold covers everything whose change means the cycle did work:
   fetch queue and front-end waits, ROB contents and cursors, issue
   queues, LQ/SQ/SB, pending-event times, walker slots, purge machinery,
   and the committed count.  Renaming state (map table, free list,
   ready_at), predictors, TLB/translation-cache contents and
   [lq_issued_at] are excluded: they only change in cycles that also
   move an included structure.  Event closures cannot be hashed — their
   scheduled times are folded instead, which is sound because every
   retry path reschedules at a strictly later cycle. *)

let rob_state_code = function Rs_waiting -> 0 | Rs_issued -> 1 | Rs_done -> 2

let sig_opt = function None -> -1 | Some v -> v

let purge_code = function
  | Pp_none -> 0
  | Pp_quiesce -> 1
  | Pp_flush start -> 2 + start

let purge_kind_code = function Pk_enter -> 0 | Pk_exit -> 1 | Pk_external -> 2

let structural_signature t =
  let h = ref Statesig.empty in
  let i v = h := Statesig.mix !h v in
  let b v = h := Statesig.mix_bool !h v in
  i (Fifo.length t.fetch_q);
  Fifo.iter
    (fun r ->
      i (Hashtbl.hash r.pre_uop);
      b r.pre_mispredict)
    t.fetch_q;
  b t.stream_done;
  i t.fetch_stall_until;
  b t.fetch_blocked_on_resolve;
  b t.fetch_blocked_on_trap;
  b t.fetch_wait_icache;
  b t.fetch_wait_itlb;
  i t.last_fetch_line;
  i t.last_fetch_page;
  i t.rob_head;
  i t.rob_tail;
  i t.rob_count;
  Array.iter
    (function
      | None -> i (-1)
      | Some e ->
        i (Hashtbl.hash e.u);
        i (sig_opt e.dst_phys);
        i (sig_opt e.old_phys);
        h := Statesig.mix_list !h Fun.id e.src_phys;
        i (sig_opt e.lq_slot);
        i (sig_opt e.sq_slot);
        i (rob_state_code e.state);
        b e.mispredict)
    t.rob;
  Array.iter (fun q -> h := Statesig.mix_list !h Fun.id !q) t.iq_alu;
  h := Statesig.mix_list !h Fun.id !(t.iq_mem);
  h := Statesig.mix_list !h Fun.id !(t.iq_fp);
  Array.iter b t.lq;
  i t.sq_head;
  i t.sq_tail;
  i t.sq_count;
  Array.iter
    (function
      | None -> i (-1)
      | Some s ->
        i s.sq_line;
        b s.sq_addr_ready)
    t.sq;
  Array.iteri (fun k busy -> if busy then i t.sb_lines.(k) else i (-1)) t.sb;
  i (Queue.length t.sb_pending);
  Queue.iter i t.sb_pending;
  i t.dtlb_outstanding;
  h := Statesig.mix_list !h fst !(t.events);
  i (purge_code t.purge);
  i (purge_kind_code t.purge_kind);
  b (t.saved_predictors <> None);
  b t.purge_requested;
  i t.committed;
  i t.purge_started;
  i (Ptw.structural_signature t.ptw);
  !h

let dump_state t buf =
  Printf.bprintf buf "core%d fq=%d[" t.id (Fifo.length t.fetch_q);
  Fifo.iter
    (fun r -> Printf.bprintf buf "(%d,%b)" (Hashtbl.hash r.pre_uop) r.pre_mispredict)
    t.fetch_q;
  Printf.bprintf buf "] sd=%b fsu=%d fbr=%b fbt=%b fwi=%b fwt=%b lfl=%d lfp=%d "
    t.stream_done t.fetch_stall_until t.fetch_blocked_on_resolve
    t.fetch_blocked_on_trap t.fetch_wait_icache t.fetch_wait_itlb
    t.last_fetch_line t.last_fetch_page;
  Printf.bprintf buf "rob=%d/%d/%d[" t.rob_head t.rob_tail t.rob_count;
  Array.iter
    (function
      | None -> Buffer.add_char buf '-'
      | Some e ->
        Printf.bprintf buf "(%d d=%d o=%d s=[" (Hashtbl.hash e.u)
          (sig_opt e.dst_phys) (sig_opt e.old_phys);
        List.iter (fun p -> Printf.bprintf buf "%d;" p) e.src_phys;
        Printf.bprintf buf "] l=%d q=%d st=%d m=%b)" (sig_opt e.lq_slot)
          (sig_opt e.sq_slot) (rob_state_code e.state) e.mispredict)
    t.rob;
  Buffer.add_string buf "] iq[";
  Array.iter
    (fun q ->
      List.iter (fun x -> Printf.bprintf buf "%d;" x) !q;
      Buffer.add_char buf '|')
    t.iq_alu;
  List.iter (fun x -> Printf.bprintf buf "%d;" x) !(t.iq_mem);
  Buffer.add_char buf '|';
  List.iter (fun x -> Printf.bprintf buf "%d;" x) !(t.iq_fp);
  Buffer.add_string buf "] lq[";
  Array.iter (fun busy -> Buffer.add_char buf (if busy then '1' else '0')) t.lq;
  Printf.bprintf buf "] sq=%d/%d/%d[" t.sq_head t.sq_tail t.sq_count;
  Array.iter
    (function
      | None -> Buffer.add_char buf '-'
      | Some s -> Printf.bprintf buf "(%d,%b)" s.sq_line s.sq_addr_ready)
    t.sq;
  Buffer.add_string buf "] sb[";
  Array.iteri
    (fun k busy ->
      if busy then Printf.bprintf buf "%d;" t.sb_lines.(k)
      else Buffer.add_string buf "-;")
    t.sb;
  Buffer.add_string buf "] sbp[";
  Queue.iter (fun s -> Printf.bprintf buf "%d;" s) t.sb_pending;
  Printf.bprintf buf "] dtlb=%d ev[" t.dtlb_outstanding;
  List.iter (fun (at, _) -> Printf.bprintf buf "%d;" at) !(t.events);
  Printf.bprintf buf "] pg=%d pk=%d sp=%b pr=%b com=%d ps=%d "
    (purge_code t.purge)
    (purge_kind_code t.purge_kind)
    (t.saved_predictors <> None)
    t.purge_requested t.committed t.purge_started;
  Ptw.dump_state t.ptw buf
