(* The purge instruction, inside and out (paper Sections 6 and 7.1).

     dune exec examples/purge_demo.exe

   Part 1 (functional): purge is machine-mode-only and architecturally a
   no-op — its entire effect is microarchitectural.
   Part 2 (timing): watch a purge execute on the out-of-order core —
   drain, then the parallel flush of L1s / TLBs / predictors at the
   hardware rates, then the cold restart — and see that the
   microarchitectural state afterwards equals a fresh core's public
   state. *)

open Mi6_isa
open Mi6_mem
open Mi6_func
open Mi6_util
open Mi6_coherence
open Mi6_cache
open Mi6_dram
open Mi6_llc
open Mi6_ooo

let () =
  print_endline "[1] purge at the ISA level";
  let mem = Phys_mem.create ~size_bytes:Addr.default_regions.Addr.dram_bytes in
  let core = Fsim.create ~mem ~hartid:0 () in
  let purges = ref 0 in
  Fsim.set_on_purge core (fun () -> incr purges);
  let prog =
    Asm.assemble ~base:0x1000 Asm.[ Li (Reg.a0, 7); I Purge; Label "end"; I Wfi ]
  in
  Fsim.load_program core prog;
  Cpu_state.set_pc (Fsim.state core) 0x1000L;
  ignore
    (Fsim.run core ~max_steps:10 ~until:(fun f ->
         Cpu_state.pc (Fsim.state f) = Int64.of_int (Asm.lookup prog "end")));
  Printf.printf
    "  machine mode: purge executed (%d microarchitectural flush signal), \
     a0 still %Ld — architecturally invisible\n"
    !purges
    (Cpu_state.get_reg (Fsim.state core) Reg.a0);
  Printf.printf "  encoding: 0x%08x (custom-0 opcode space, %s)\n"
    (Encode.encode Purge)
    "trivially added to any ISA as the paper argues";

  print_endline "\n[2] purge on the out-of-order core";
  let stats = Stats.create () in
  let links = [| Link.create ~depth:4; Link.create ~depth:4 |] in
  let dram = Controller.constant ~latency:120 ~max_outstanding:24 ~stats () in
  let llc =
    Llc.create (Llc.default_config ~cores:2) ~security:Llc.mi6_security ~links
      ~dram ~stats
  in
  let l1d = L1.create L1.default_config ~link:links.(0) ~stats ~name:"l1d" in
  let l1i = L1.create L1.default_config ~link:links.(1) ~stats ~name:"l1i" in
  (* A workload that dirties everything: branches train the predictors,
     loads fill the D-cache and TLBs. *)
  let rng = Rng.of_int 7 in
  let q = Queue.create () in
  for i = 0 to 30_000 do
    if i mod 3 = 0 then
      Queue.add
        (Uop.branch
           ~pc:(0x1000 + (i mod 2048 * 4))
           ~taken:(Rng.bool rng ~p:0.6) ~target:0x9000 ~srcs:[] ())
        q
    else
      Queue.add
        (Uop.load
           ~pc:(0x1000 + (i mod 2048 * 4))
           ~addr:(0x100000 + (Rng.int rng 262144 land lnot 7))
           ~dst:(2 + (i mod 6)) ~srcs:[] ())
        q
  done;
  let stream () = Queue.take_opt q in
  let ooo =
    Core.create Core_config.default ~l1i ~l1d ~stream ~stats
      ~pt_base_line:(Addr.region_base Addr.default_regions 5 / 64)
  in
  let cycle = ref 0 in
  let step () =
    Core.tick ooo ~now:!cycle;
    L1.tick l1d ~now:!cycle ~complete:(fun id ->
        Core.mem_complete ooo ~now:!cycle ~id);
    L1.tick l1i ~now:!cycle ~complete:(fun id -> Core.icache_complete ooo ~id);
    Llc.tick llc ~now:!cycle;
    incr cycle
  in
  while not (Core.finished ooo) do
    step ()
  done;
  Printf.printf "  after 30k instructions: L1D holds %d lines, predictor \
                 signature 0x%x\n"
    (L1.valid_lines l1d) (Core.predictor_signature ooo land 0xFFFFFF);
  (* The security monitor deschedules the domain: purge. *)
  let before = !cycle in
  Core.request_purge ooo;
  while Core.purging ooo || not (Core.finished ooo) do
    step ()
  done;
  let fresh_sig =
    let s2 = Stats.create () in
    let links2 = [| Link.create ~depth:4; Link.create ~depth:4 |] in
    let a = L1.create L1.default_config ~link:links2.(0) ~stats:s2 ~name:"a" in
    let b = L1.create L1.default_config ~link:links2.(1) ~stats:s2 ~name:"b" in
    Core.predictor_signature
      (Core.create Core_config.default ~l1i:a ~l1d:b
         ~stream:(fun () -> None)
         ~stats:s2 ~pt_base_line:0)
  in
  Printf.printf "  purge took %d cycles (>= 512 floor: one L1 line/cycle, \
                 one L2-TLB set/cycle, 8 predictor entries/cycle)\n"
    (!cycle - before);
  Printf.printf "  after purge: L1D %d lines, L1I %d lines, predictor \
                 signature %s fresh core's\n"
    (L1.valid_lines l1d) (L1.valid_lines l1i)
    (if Core.predictor_signature ooo = fresh_sig then "EQUALS" else "differs from");
  if L1.valid_lines l1d = 0 && Core.predictor_signature ooo = fresh_sig then
    print_endline "\npurge_demo: OK"
  else failwith "purge left distinguishable state"
